package sched

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"payless/internal/catalog"
	"payless/internal/market"
	"payless/internal/region"
	"payless/internal/semstore"
	"payless/internal/storage"
	"payless/internal/value"
)

// tTable is a one-axis market table: a in [1,100], one output column v.
func tTable() *catalog.Table {
	return &catalog.Table{
		Name: "T", Dataset: "DS",
		Schema: value.Schema{
			{Name: "a", Type: value.Int},
			{Name: "v", Type: value.Int},
		},
		Attrs: []catalog.Attribute{
			{Name: "a", Type: value.Int, Binding: catalog.Free, Class: catalog.NumericAttr, Min: 1, Max: 100},
			{Name: "v", Type: value.Int, Binding: catalog.Output},
		},
	}
}

// boxFor builds the [lo, hi] (inclusive) box on the a axis.
func boxFor(lo, hi int64) region.Box {
	return region.Box{Dims: []region.Interval{{Lo: lo, Hi: hi + 1}}}
}

func reqFor(t *testing.T, meta *catalog.Table, lo, hi int64, record bool) Request {
	t.Helper()
	b := boxFor(lo, hi)
	q, err := catalog.QueryForBox(meta, b)
	if err != nil {
		t.Fatal(err)
	}
	return Request{Meta: meta, Box: b, Query: q, Record: record}
}

// fakeCaller synthesizes one row per coordinate of the queried a-range and
// bills ceil(rows/t) transactions. gate, when non-nil, blocks every wire
// call until released (or the call context dies).
type fakeCaller struct {
	meta  *catalog.Table
	t     int64
	gate  chan struct{}
	mu    sync.Mutex
	calls []catalog.AccessQuery
}

func (f *fakeCaller) Call(ctx context.Context, q catalog.AccessQuery) (market.Result, error) {
	f.mu.Lock()
	f.calls = append(f.calls, q)
	f.mu.Unlock()
	if f.gate != nil {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return market.Result{}, ctx.Err()
		}
	}
	lo, hi := int64(1), int64(100)
	for _, p := range q.Preds {
		if p.Attr != "a" {
			continue
		}
		switch {
		case p.Eq != nil:
			lo, hi = p.Eq.AsInt(), p.Eq.AsInt()
		default:
			if p.Lo != nil {
				lo = *p.Lo
			}
			if p.Hi != nil {
				hi = *p.Hi
			}
		}
	}
	res := market.Result{Schema: f.meta.Schema.Clone()}
	for a := lo; a <= hi; a++ {
		res.Rows = append(res.Rows, value.Row{value.NewInt(a), value.NewInt(a * 10)})
	}
	res.Records = len(res.Rows)
	t := f.t
	if t <= 0 {
		t = 10
	}
	res.Transactions = (int64(res.Records) + t - 1) / t
	res.Price = float64(res.Transactions)
	return res, nil
}

func (f *fakeCaller) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

func newSched(caller market.Caller, cfg Config) *Scheduler {
	if cfg.TuplesPerTransaction == nil {
		cfg.TuplesPerTransaction = func(string) int { return 10 }
	}
	return New(caller, cfg)
}

func TestSingleFlightSharesOneCallAndOneBill(t *testing.T) {
	meta := tTable()
	fc := &fakeCaller{meta: meta, t: 10, gate: make(chan struct{})}
	s := newSched(fc, Config{})

	const n = 4
	type out struct {
		res  market.Result
		info Info
		err  error
	}
	outs := make([]out, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, inf, err := s.Fetch(context.Background(), reqFor(t, meta, 1, 20, false))
			outs[i] = out{r, inf, err}
		}(i)
	}
	waitFor(t, func() bool { return s.Stats().SingleflightHits == n-1 })
	close(fc.gate)
	wg.Wait()

	if got := fc.callCount(); got != 1 {
		t.Fatalf("wire calls: %d, want 1", got)
	}
	var billed int64
	payers := 0
	for i, o := range outs {
		if o.err != nil {
			t.Fatalf("waiter %d: %v", i, o.err)
		}
		if len(o.res.Rows) != 20 || o.res.Records != 20 {
			t.Fatalf("waiter %d rows: %d", i, len(o.res.Rows))
		}
		if !o.info.Shared || o.info.SharedWith != n-1 {
			t.Fatalf("waiter %d info: %+v", i, o.info)
		}
		if o.res.Transactions > 0 {
			payers++
		}
		billed += o.res.Transactions
	}
	if payers != 1 || billed != 2 {
		t.Fatalf("bill attribution: %d payers, %d transactions (want 1 payer, 2 transactions)", payers, billed)
	}
}

func TestCanceledWaiterDetachesWithoutKillingSharedCall(t *testing.T) {
	meta := tTable()
	fc := &fakeCaller{meta: meta, t: 10, gate: make(chan struct{})}
	s := newSched(fc, Config{})

	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.Fetch(ctx1, reqFor(t, meta, 1, 10, false))
		errc <- err
	}()
	waitFor(t, func() bool { return inflightCount(s) == 1 })

	done := make(chan struct{})
	var res market.Result
	var err2 error
	go func() {
		defer close(done)
		res, _, err2 = s.Fetch(context.Background(), reqFor(t, meta, 1, 10, false))
	}()
	waitFor(t, func() bool { return s.Stats().SingleflightHits == 1 })

	cancel1()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("canceled waiter: %v", err)
	}
	close(fc.gate)
	<-done
	if err2 != nil {
		t.Fatalf("surviving waiter: %v", err2)
	}
	if len(res.Rows) != 10 || res.Transactions != 1 {
		t.Fatalf("survivor got %d rows, %d transactions", len(res.Rows), res.Transactions)
	}
	if fc.callCount() != 1 {
		t.Fatalf("wire calls: %d", fc.callCount())
	}
}

func TestLastWaiterCancelTearsDownTheCall(t *testing.T) {
	meta := tTable()
	fc := &fakeCaller{meta: meta, t: 10, gate: make(chan struct{})}
	defer close(fc.gate)
	s := newSched(fc, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.Fetch(ctx, reqFor(t, meta, 1, 10, false))
		errc <- err
	}()
	waitFor(t, func() bool { return inflightCount(s) == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("want Canceled, got %v", err)
	}
	// The wire call's context dies with its last waiter, so the flight
	// drains from the in-flight table.
	waitFor(t, func() bool { return inflightCount(s) == 0 })
}

func TestPiggybackOnContainingInFlightCall(t *testing.T) {
	meta := tTable()
	fc := &fakeCaller{meta: meta, t: 10, gate: make(chan struct{})}
	s := newSched(fc, Config{})

	var wide, narrow market.Result
	var infoN Info
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wide, _, _ = s.Fetch(context.Background(), reqFor(t, meta, 1, 50, false))
	}()
	waitFor(t, func() bool { return inflightCount(s) == 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		narrow, infoN, _ = s.Fetch(context.Background(), reqFor(t, meta, 10, 19, false))
	}()
	waitFor(t, func() bool { return s.Stats().SingleflightHits == 1 })
	close(fc.gate)
	wg.Wait()

	if fc.callCount() != 1 {
		t.Fatalf("wire calls: %d", fc.callCount())
	}
	if len(wide.Rows) != 50 {
		t.Fatalf("wide rows: %d", len(wide.Rows))
	}
	if len(narrow.Rows) != 10 || narrow.Records != 10 {
		t.Fatalf("piggybacked rows must be filtered to the narrow query: %d", len(narrow.Rows))
	}
	if !infoN.Shared {
		t.Fatalf("narrow info: %+v", infoN)
	}
	if wide.Transactions+narrow.Transactions != 5 {
		t.Fatalf("total billed: %d", wide.Transactions+narrow.Transactions)
	}
}

func TestWindowMergesAdjacentBoxesIntoOneCall(t *testing.T) {
	meta := tTable()
	fc := &fakeCaller{meta: meta, t: 10}
	s := newSched(fc, Config{Window: 30 * time.Millisecond})

	var a, b market.Result
	var ia, ib Info
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); a, ia, _ = s.Fetch(context.Background(), reqFor(t, meta, 1, 5, false)) }()
	go func() { defer wg.Done(); b, ib, _ = s.Fetch(context.Background(), reqFor(t, meta, 6, 9, false)) }()
	wg.Wait()

	if fc.callCount() != 1 {
		t.Fatalf("wire calls: %d, want 1 merged call", fc.callCount())
	}
	if len(a.Rows) != 5 || len(b.Rows) != 4 {
		t.Fatalf("split rows: %d / %d", len(a.Rows), len(b.Rows))
	}
	if !ia.Merged || !ib.Merged || !ia.Delayed || !ib.Delayed {
		t.Fatalf("infos: %+v / %+v", ia, ib)
	}
	// Separately the parts cost 1+1 transactions; merged they cost 1.
	if got := a.Transactions + b.Transactions; got != 1 {
		t.Fatalf("merged bill: %d transactions, want 1", got)
	}
	st := s.Stats()
	if st.MergedCalls != 1 || st.DelayedCalls != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MergedTransactionsSaved != 1 {
		t.Fatalf("saved: %d, want 1", st.MergedTransactionsSaved)
	}
}

func TestWindowLeavesGappedBoxesAlone(t *testing.T) {
	meta := tTable()
	fc := &fakeCaller{meta: meta, t: 10}
	s := newSched(fc, Config{Window: 30 * time.Millisecond})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s.Fetch(context.Background(), reqFor(t, meta, 1, 5, false)) }()
	go func() { defer wg.Done(); s.Fetch(context.Background(), reqFor(t, meta, 50, 55, false)) }()
	wg.Wait()

	// A gap between the boxes means the union is not exact: merging would
	// buy rows nobody asked for, so the scheduler must not fuse them.
	if fc.callCount() != 2 {
		t.Fatalf("wire calls: %d, want 2 (no merge across a gap)", fc.callCount())
	}
}

func TestMergeRespectsCostModelVeto(t *testing.T) {
	meta := tTable()
	fc := &fakeCaller{meta: meta, t: 10}
	s := newSched(fc, Config{
		Window: 30 * time.Millisecond,
		// A hostile estimator that prices the union above the parts: the
		// scheduler must believe it and keep the calls separate.
		Estimate: func(_ string, b region.Box) float64 {
			if b.Dims[0].Width() > 6 {
				return 1000
			}
			return 5
		},
	})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); s.Fetch(context.Background(), reqFor(t, meta, 1, 5, false)) }()
	go func() { defer wg.Done(); s.Fetch(context.Background(), reqFor(t, meta, 6, 9, false)) }()
	wg.Wait()

	if fc.callCount() != 2 {
		t.Fatalf("wire calls: %d, want 2 (cost model vetoed the merge)", fc.callCount())
	}
}

func TestLargeFetchSkipsTheWindow(t *testing.T) {
	meta := tTable()
	fc := &fakeCaller{meta: meta, t: 10}
	s := newSched(fc, Config{
		Window:   time.Hour, // parked requests would hang the test
		Estimate: func(_ string, b region.Box) float64 { return float64(b.Dims[0].Width()) },
	})
	res, info, err := s.Fetch(context.Background(), reqFor(t, meta, 1, 40, false))
	if err != nil {
		t.Fatal(err)
	}
	if info.Delayed {
		t.Fatal("a super-transaction fetch must dispatch immediately")
	}
	if len(res.Rows) != 40 || res.Transactions != 4 {
		t.Fatalf("rows %d transactions %d", len(res.Rows), res.Transactions)
	}
}

func TestParkedWaiterCancelBeforeDispatch(t *testing.T) {
	meta := tTable()
	fc := &fakeCaller{meta: meta, t: 10}
	s := newSched(fc, Config{Window: 50 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.Fetch(ctx, reqFor(t, meta, 1, 5, false))
		errc <- err
	}()
	waitFor(t, func() bool { return s.Stats().DelayedCalls == 1 })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("parked waiter: %v", err)
	}
	// Once the window fires, the abandoned request must not be bought.
	time.Sleep(80 * time.Millisecond)
	if fc.callCount() != 0 {
		t.Fatalf("abandoned parked request still dispatched: %d calls", fc.callCount())
	}
}

func TestSharedRecordPathRecordsExactlyOnce(t *testing.T) {
	meta := tTable()
	fc := &fakeCaller{meta: meta, t: 10, gate: make(chan struct{})}
	store := semstore.New(storage.NewDB())
	s := newSched(fc, Config{Store: store})

	const n = 3
	infos := make([]Info, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, infos[i], _ = s.Fetch(context.Background(), reqFor(t, meta, 1, 20, true))
		}(i)
	}
	waitFor(t, func() bool { return s.Stats().SingleflightHits == n-1 })
	close(fc.gate)
	wg.Wait()

	for i, inf := range infos {
		if !inf.Recorded {
			t.Fatalf("waiter %d: shared record-path flight must report Recorded, got %+v", i, inf)
		}
	}
	if got := store.StoredRowCount("T"); got != 20 {
		t.Fatalf("stored rows: %d, want 20", got)
	}
	covered, _ := store.Coverage("T", boxFor(1, 20), time.Time{})
	if !region.CoveredBy(boxFor(1, 20), covered) {
		t.Fatal("shared flight's box missing from the store")
	}
}

func TestSoleFlightLeavesRecordingToTheEngine(t *testing.T) {
	meta := tTable()
	fc := &fakeCaller{meta: meta, t: 10}
	store := semstore.New(storage.NewDB())
	s := newSched(fc, Config{Store: store})

	_, info, err := s.Fetch(context.Background(), reqFor(t, meta, 1, 20, true))
	if err != nil {
		t.Fatal(err)
	}
	if info.Recorded {
		t.Fatal("sole flight must leave recording to the requester's engine (N=1 parity)")
	}
	if got := store.StoredRowCount("T"); got != 0 {
		t.Fatalf("scheduler recorded a sole flight: %d rows", got)
	}
}

func TestAbandonedRecordPathCallIsSalvagedIntoTheStore(t *testing.T) {
	meta := tTable()
	// No gate: the wire call succeeds instantly; the waiter detaches while
	// (or after) the money is spent.
	release := make(chan struct{})
	var entered atomic.Bool
	slow := market.CallerFunc(func(ctx context.Context, q catalog.AccessQuery) (market.Result, error) {
		entered.Store(true)
		<-release // ignore ctx: simulate a response already on the wire
		return (&fakeCaller{meta: meta, t: 10}).Call(context.Background(), q)
	})
	store := semstore.New(storage.NewDB())
	s := newSched(slow, Config{Store: store})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := s.Fetch(ctx, reqFor(t, meta, 1, 20, true))
		errc <- err
	}()
	waitFor(t, func() bool { return entered.Load() })
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("detached waiter: %v", err)
	}
	close(release)
	// The call completed after its last waiter left: the paid-for rows must
	// still land in the store so a retry does not re-buy them.
	waitFor(t, func() bool { return store.StoredRowCount("T") == 20 })
}

func TestWireErrorPropagatesToEveryWaiter(t *testing.T) {
	meta := tTable()
	boom := market.CallerFunc(func(ctx context.Context, q catalog.AccessQuery) (market.Result, error) {
		return market.Result{}, fmt.Errorf("market down")
	})
	s := newSched(boom, Config{Window: 20 * time.Millisecond})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, _, errs[0] = s.Fetch(context.Background(), reqFor(t, meta, 1, 5, false)) }()
	go func() { defer wg.Done(); _, _, errs[1] = s.Fetch(context.Background(), reqFor(t, meta, 6, 9, false)) }()
	wg.Wait()
	for i, err := range errs {
		if err == nil || err.Error() != "market down" {
			t.Fatalf("waiter %d: %v", i, err)
		}
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}

func inflightCount(s *Scheduler) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.inflight)
}
