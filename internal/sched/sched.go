// Package sched is PayLess's global market-call scheduler: a coalescing
// layer between the query engine and the market caller that exploits what a
// single-query optimizer cannot see — OTHER queries' calls that are in
// flight or about to launch at the same moment.
//
// Under transaction pricing p·ceil(records/t) (paper §2.1 Eq. 1), two
// concurrent queries that need the same box pay twice for the same rows,
// and two queries that need adjacent slivers of one table each pay the ceil
// rounding twice. The scheduler removes both overheads:
//
//   - Single-flight: identical in-flight access queries share one wire call
//     and one bill. Waiters have per-waiter context semantics — a canceled
//     waiter detaches without canceling the shared call; the call itself is
//     torn down only when its last waiter has detached.
//
//   - Cross-query merging: with a coalesce window enabled, sub-transaction
//     fetches are parked briefly and adjacent/overlapping boxes from
//     different queries are fused into one call when the ceil-pricing cost
//     model says the union is no more expensive than the parts. Only exact
//     unions are fused (the bounding box adds no gap rows), which makes the
//     merge provably never-worse under ceil pricing:
//     ceil((a+b)/t) <= ceil(a/t) + ceil(b/t). This generalizes the paper's
//     bind-value coalescing (Fig. 9, box B2) across query boundaries.
//
// Billing attribution keeps client-side accounting equal to the seller's
// meter: exactly one participant of a shared or merged call — the first to
// collect the result — carries the full Transactions and Price; every other
// participant reports zero. Each participant's rows are filtered down to
// its own access query, so Result.Records is the per-requester row count
// (honest statistics feedback), not the billed count.
//
// Recording to the semantic store happens exactly once per wire call. For a
// call with a single live requester the scheduler leaves recording to that
// requester's engine — the N=1 path is byte-identical to an unscheduled
// run. For shared, merged, or abandoned (all waiters detached after the
// money was spent) calls, the scheduler records the fetched box itself and
// tells requesters via Info.Recorded so their engines skip the duplicate.
package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"payless/internal/catalog"
	"payless/internal/market"
	"payless/internal/obs"
	"payless/internal/overload"
	"payless/internal/region"
	"payless/internal/semstore"
	"payless/internal/value"
)

// Request is one engine-side fetch: the planned access query, the box it
// covers, and whether its rows are destined for the semantic store.
type Request struct {
	Meta  *catalog.Table
	Box   region.Box
	Query catalog.AccessQuery
	// Record marks SQR fetches whose rows must end up in the semantic
	// store. The scheduler uses it to decide whether a shared or abandoned
	// call needs recording on the requesters' behalf.
	Record bool
}

// Info reports how the scheduler served a request.
type Info struct {
	// Shared is true when the request rode a wire call it did not launch
	// alone; SharedWith counts the other requesters on the same call.
	Shared     bool
	SharedWith int
	// Merged is true when the wire call fused several requesters' boxes
	// into one union box.
	Merged bool
	// Delayed is true when the request was parked in the coalesce window
	// before dispatch.
	Delayed bool
	// Recorded is true when the scheduler already recorded the call's rows
	// into the semantic store; the requester's engine must not record them
	// again.
	Recorded bool
}

// Config tunes a Scheduler.
type Config struct {
	// Window is how long a sub-transaction-size fetch may be parked waiting
	// for mergeable company. Zero (the default) dispatches every request
	// immediately — single-flighting still applies.
	Window time.Duration
	// TuplesPerTransaction returns the dataset's transaction size t; values
	// <= 0 fall back to 100 (the market default).
	TuplesPerTransaction func(dataset string) int
	// Estimate returns the estimated row count of a box, for the merge cost
	// model and the sub-transaction parking gate. Nil means unknown sizes:
	// every windowed fetch is parkable and exact unions merge
	// unconditionally (they are never worse under ceil pricing).
	Estimate func(table string, b region.Box) float64
	// Store, when non-nil, receives the rows of shared, merged, and
	// abandoned record-path calls — exactly once per wire call.
	Store *semstore.Store
	// Metrics, when non-nil, receives the scheduler counter families.
	Metrics *obs.Metrics
	// Now stamps semantic-store entries; nil means time.Now.
	Now func() time.Time
}

// Stats is a snapshot of the scheduler's counters.
type Stats struct {
	// SingleflightHits counts requests that joined an already-in-flight
	// wire call instead of issuing their own.
	SingleflightHits int64
	// MergedCalls counts wire calls that fused more than one requester box;
	// MergedTransactionsSaved sums the transactions the fusions saved
	// versus issuing the parts separately.
	MergedCalls             int64
	MergedTransactionsSaved int64
	// DelayedCalls counts requests parked in the coalesce window.
	DelayedCalls int64
}

// Scheduler coalesces market calls across concurrent queries. One scheduler
// serves one client (one buyer account); it is safe for concurrent use.
type Scheduler struct {
	caller market.Caller
	cfg    Config

	mu       sync.Mutex
	inflight map[string]*flight
	pending  map[string]*group

	singleflightHits atomic.Int64
	mergedCalls      atomic.Int64
	mergedSaved      atomic.Int64
	delayedCalls     atomic.Int64
}

// New builds a scheduler issuing its wire calls through caller.
func New(caller market.Caller, cfg Config) *Scheduler {
	return &Scheduler{
		caller:   caller,
		cfg:      cfg,
		inflight: make(map[string]*flight),
		pending:  make(map[string]*group),
	}
}

// PendingGroups reports how many coalesce-window groups are currently
// parked (armed timers). Dead groups — every waiter canceled — are dropped
// eagerly, so a drained scheduler reports zero even mid-window.
func (s *Scheduler) PendingGroups() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		SingleflightHits:        s.singleflightHits.Load(),
		MergedCalls:             s.mergedCalls.Load(),
		MergedTransactionsSaved: s.mergedSaved.Load(),
		DelayedCalls:            s.delayedCalls.Load(),
	}
}

// flight is one wire call and the set of requesters riding it.
type flight struct {
	meta  *catalog.Table
	box   region.Box
	query catalog.AccessQuery
	key   string
	// record is true when at least one source requester is on the SQR path.
	record bool
	// sources holds the originating requests when the flight fused several
	// boxes (merged is then true); nil for plain flights.
	sources []Request
	merged  bool

	cancel context.CancelFunc
	done   chan struct{}
	res    market.Result
	err    error
	// recorded is set before done closes; read only after <-done.
	recorded bool

	mu      sync.Mutex
	waiters int
	joiners int
	billed  bool
}

// flightKey canonicalizes an access query for the single-flight map. The
// query's own String() omits the dataset (tables are unique per catalog,
// datasets namespace accounts), so it is prefixed here.
func flightKey(q catalog.AccessQuery) string {
	return q.Dataset + "\x00" + q.String()
}

func tableKey(t *catalog.Table) string { return t.Dataset + "\x00" + t.Name }

func (s *Scheduler) now() time.Time {
	if s.cfg.Now != nil {
		return s.cfg.Now()
	}
	return time.Now()
}

func (s *Scheduler) tuplesPer(dataset string) int {
	if s.cfg.TuplesPerTransaction != nil {
		if t := s.cfg.TuplesPerTransaction(dataset); t > 0 {
			return t
		}
	}
	return 100
}

// Fetch serves one engine fetch through the scheduler. It blocks until the
// underlying wire call completes or ctx is done; cancelling ctx detaches
// this waiter only — a call with other live waiters keeps running.
func (s *Scheduler) Fetch(ctx context.Context, req Request) (market.Result, Info, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return market.Result{}, Info{}, err
	}
	key := flightKey(req.Query)

	s.mu.Lock()
	// 1. Identical call already in flight: join it.
	if f, ok := s.inflight[key]; ok {
		f.join(req.Record)
		s.mu.Unlock()
		s.singleflightHits.Add(1)
		s.cfg.Metrics.ObserveSchedSingleflightHit()
		return s.wait(ctx, req, f, Info{})
	}
	// 2. A strictly wider call in flight for the same table: piggyback on
	// it and filter its rows down to this request afterwards.
	for _, f := range s.inflight {
		if f.meta.Dataset == req.Meta.Dataset && f.meta.Name == req.Meta.Name &&
			f.box.D() == req.Box.D() && f.box.Contains(req.Box) {
			f.join(req.Record)
			s.mu.Unlock()
			s.singleflightHits.Add(1)
			s.cfg.Metrics.ObserveSchedSingleflightHit()
			return s.wait(ctx, req, f, Info{})
		}
	}
	// 3. Coalesce window: park sub-transaction fetches and let the window
	// timer fuse whatever mergeable company shows up. A caller whose
	// deadline cannot outlive the window is dispatched immediately instead:
	// parking it would spend its entire remaining budget waiting for
	// company it will never get to bill with.
	if s.cfg.Window > 0 && s.parkable(req) && !overload.ShortOf(ctx, s.cfg.Window) {
		pr := s.park(req)
		s.mu.Unlock()
		s.delayedCalls.Add(1)
		s.cfg.Metrics.ObserveSchedDelayedCall()
		select {
		case <-pr.ready:
		case <-ctx.Done():
			s.mu.Lock()
			if pr.fl == nil {
				s.abandon(pr)
				s.mu.Unlock()
				return market.Result{}, Info{Delayed: true}, ctx.Err()
			}
			s.mu.Unlock()
			// Assigned in the same instant we were canceled: fall through
			// to the flight wait, which detaches immediately.
		}
		return s.wait(ctx, req, pr.fl, Info{Delayed: true})
	}
	// 4. Launch a fresh wire call.
	f := s.launch(req.Meta, req.Box, req.Query, req.Record, nil)
	s.mu.Unlock()
	return s.wait(ctx, req, f, Info{})
}

// join attaches one more requester to an in-flight call. Caller holds s.mu.
func (f *flight) join(record bool) {
	f.mu.Lock()
	f.joiners++
	f.waiters++
	f.mu.Unlock()
	// A joiner on the record path upgrades the flight: its rows must reach
	// the store even though the launcher did not ask. f.record is only read
	// after the wire call completes, so this write is safe under s.mu.
	if record {
		f.record = true
	}
}

// launch registers and starts a wire call for the given box. Caller holds
// s.mu. sources is non-nil only for merged flights.
func (s *Scheduler) launch(meta *catalog.Table, box region.Box, q catalog.AccessQuery, record bool, sources []Request) *flight {
	ctx, cancel := context.WithCancel(context.Background())
	f := &flight{
		meta:    meta,
		box:     box,
		query:   q,
		key:     flightKey(q),
		record:  record,
		sources: sources,
		merged:  len(sources) > 1,
		cancel:  cancel,
		done:    make(chan struct{}),
		waiters: maxInt(1, len(sources)),
		joiners: maxInt(1, len(sources)),
	}
	s.inflight[f.key] = f
	go s.run(ctx, f)
	return f
}

// run issues the wire call, settles the flight, and performs the
// scheduler-side semantic-store recording when it is the scheduler's job.
func (s *Scheduler) run(ctx context.Context, f *flight) {
	res, err := s.caller.Call(ctx, f.query)

	s.mu.Lock()
	if s.inflight[f.key] == f {
		delete(s.inflight, f.key)
	}
	s.mu.Unlock()

	f.mu.Lock()
	sharedEver := f.joiners > 1
	abandoned := f.waiters == 0
	f.mu.Unlock()

	if err == nil {
		if f.merged {
			s.mergedCalls.Add(1)
			saved := s.mergeSavings(f, res)
			s.cfg.Metrics.ObserveSchedMerge(saved)
			s.mergedSaved.Add(saved)
		}
		// Record exactly once per wire call — but only when the requesters'
		// engines cannot: a shared call would be double-recorded, a merged
		// call's union box belongs to no single requester, and an abandoned
		// call has no engine left to salvage the paid-for rows. The sole
		// live requester of a plain call records through its own engine,
		// keeping the N=1 path byte-identical to an unscheduled run.
		if f.record && s.cfg.Store != nil && (sharedEver || f.merged || abandoned) {
			if _, rerr := s.cfg.Store.Record(f.meta, f.box, res.Rows, s.now()); rerr == nil {
				f.recorded = true
			}
		}
	}
	f.res, f.err = res, err
	close(f.done)
}

// mergeSavings computes how many transactions fusing the sources saved
// versus issuing each part separately, from the actual rows delivered.
func (s *Scheduler) mergeSavings(f *flight, res market.Result) int64 {
	t := int64(s.tuplesPer(f.meta.Dataset))
	var parts int64
	for _, src := range f.sources {
		n := int64(0)
		for _, row := range res.Rows {
			if catalog.MatchesRow(f.meta, src.Query, row) {
				n++
			}
		}
		parts += ceilDiv(n, t)
	}
	saved := parts - res.Transactions
	if saved < 0 {
		saved = 0
	}
	return saved
}

// wait blocks on the flight and assembles this requester's view of the
// shared result: rows filtered to its own query, the bill attributed to
// exactly one requester.
func (s *Scheduler) wait(ctx context.Context, req Request, f *flight, info Info) (market.Result, Info, error) {
	select {
	case <-f.done:
	case <-ctx.Done():
		f.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		f.mu.Unlock()
		if last {
			// The last waiter detaching tears the wire call down; if the
			// money was already spent, run() salvages the rows into the
			// store on the record path.
			f.cancel()
		}
		return market.Result{}, info, ctx.Err()
	}
	f.cancel() // release the flight context once settled
	if f.err != nil {
		f.mu.Lock()
		f.waiters--
		f.mu.Unlock()
		return market.Result{}, info, f.err
	}

	f.mu.Lock()
	f.waiters--
	first := !f.billed
	f.billed = true
	sharedWith := f.joiners - 1
	f.mu.Unlock()

	info.Shared = sharedWith > 0
	info.SharedWith = sharedWith
	info.Merged = f.merged
	info.Recorded = f.recorded

	res := f.res
	out := market.Result{Schema: res.Schema, Rows: res.Rows}
	if f.merged || flightKey(req.Query) != f.key {
		// Merged union or piggybacked superset: hand back only the rows the
		// requester asked for.
		out.Rows = filterRows(f.meta, req.Query, res.Rows)
	}
	out.Records = len(out.Rows)
	if first {
		// The first requester to collect carries the whole bill, so the sum
		// of client-side reports equals the seller's meter exactly.
		out.Transactions = res.Transactions
		out.Price = res.Price
	}
	return out, info, nil
}

func filterRows(meta *catalog.Table, q catalog.AccessQuery, rows []value.Row) []value.Row {
	out := make([]value.Row, 0, len(rows))
	for _, row := range rows {
		if catalog.MatchesRow(meta, q, row) {
			out = append(out, row)
		}
	}
	return out
}

// ---- coalesce window -------------------------------------------------

// group is the set of parked requests for one table, awaiting the window
// timer.
type group struct {
	key  string
	reqs []*parked
	// timer fires the group at the window's end; live counts requests not
	// yet abandoned. When the last live request cancels, the timer is
	// stopped and the group dropped immediately — an armed timer on a dead
	// group would otherwise be retained until the window elapsed.
	timer *time.Timer
	live  int
}

// parked is one request sitting in the coalesce window.
type parked struct {
	req Request
	g   *group
	// fl is assigned under s.mu when the window fires; ready closes right
	// after. abandoned marks a request whose waiter gave up pre-dispatch.
	fl        *flight
	ready     chan struct{}
	abandoned bool
}

// parkable reports whether a request is small enough to be worth delaying:
// its estimated row count is below the transaction size (the call would
// waste most of its ceil rounding). Unknown sizes are treated as small.
func (s *Scheduler) parkable(req Request) bool {
	if s.cfg.Estimate == nil {
		return true
	}
	est := s.cfg.Estimate(req.Meta.Name, req.Box)
	return est < float64(s.tuplesPer(req.Meta.Dataset))
}

// park adds the request to its table's pending group, starting the window
// timer when the group is new. Caller holds s.mu.
func (s *Scheduler) park(req Request) *parked {
	key := tableKey(req.Meta)
	g, ok := s.pending[key]
	if !ok {
		g = &group{key: key}
		s.pending[key] = g
		g.timer = time.AfterFunc(s.cfg.Window, func() { s.fire(g) })
	}
	pr := &parked{req: req, g: g, ready: make(chan struct{})}
	g.reqs = append(g.reqs, pr)
	g.live++
	return pr
}

// abandon detaches a parked request whose waiter canceled pre-dispatch.
// When it was the group's last live request, the window timer is stopped
// and the group removed — nothing would fire anyway, and holding the timer
// for the rest of the window retains the group (and its requests) for no
// reason. Caller holds s.mu.
func (s *Scheduler) abandon(pr *parked) {
	pr.abandoned = true
	g := pr.g
	g.live--
	if g.live == 0 && s.pending[g.key] == g {
		delete(s.pending, g.key)
		g.timer.Stop()
	}
}

// fire dispatches a pending group: it clusters the parked boxes into exact
// unions the cost model approves of, then launches (or joins) one flight
// per cluster.
func (s *Scheduler) fire(g *group) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending[g.key] == g {
		delete(s.pending, g.key)
	}
	live := g.reqs[:0]
	for _, pr := range g.reqs {
		if !pr.abandoned {
			live = append(live, pr)
		}
	}
	if len(live) == 0 {
		return
	}
	for _, cl := range s.cluster(live) {
		s.dispatchCluster(cl)
	}
}

// cluster greedily fuses parked requests whose boxes form exact unions the
// ceil cost model approves. Groups are small; the quadratic sweep is fine.
type mergeCluster struct {
	meta *catalog.Table
	box  region.Box
	prs  []*parked
}

func (s *Scheduler) cluster(live []*parked) []*mergeCluster {
	clusters := make([]*mergeCluster, 0, len(live))
	for _, pr := range live {
		clusters = append(clusters, &mergeCluster{meta: pr.req.Meta, box: pr.req.Box, prs: []*parked{pr}})
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(clusters) && !changed; i++ {
			for j := i + 1; j < len(clusters); j++ {
				u, ok := s.fusable(clusters[i].meta, clusters[i].box, clusters[j].box)
				if !ok {
					continue
				}
				clusters[i].box = u
				clusters[i].prs = append(clusters[i].prs, clusters[j].prs...)
				clusters = append(clusters[:j], clusters[j+1:]...)
				changed = true
				break
			}
		}
	}
	return clusters
}

// fusable returns the union box of a and b when (1) it is exact — the
// boxes differ on at most one dimension and overlap or touch on it, so the
// bounding box buys no gap rows, (2) the union is expressible as a market
// call (categorical axes cannot span, §4.2 Fig. 8), and (3) the ceil cost
// model prices the union at no more than the parts. For exact unions the
// true bill always satisfies (3); the estimate gate just avoids merges the
// model cannot vouch for.
func (s *Scheduler) fusable(meta *catalog.Table, a, b region.Box) (region.Box, bool) {
	if a.D() != b.D() {
		return region.Box{}, false
	}
	diff := -1
	for i := range a.Dims {
		if a.Dims[i] == b.Dims[i] {
			continue
		}
		if diff >= 0 {
			return region.Box{}, false
		}
		diff = i
	}
	u := a.Clone()
	if diff >= 0 {
		x, y := a.Dims[diff], b.Dims[diff]
		if x.Lo > y.Hi || y.Lo > x.Hi {
			return region.Box{}, false // gap between the parts: union not exact
		}
		u.Dims[diff] = region.Interval{Lo: min64(x.Lo, y.Lo), Hi: max64(x.Hi, y.Hi)}
	}
	if _, err := catalog.QueryForBox(meta, u); err != nil {
		return region.Box{}, false
	}
	if s.cfg.Estimate != nil {
		t := float64(s.tuplesPer(meta.Dataset))
		costU := ceilF(s.cfg.Estimate(meta.Name, u) / t)
		costA := ceilF(s.cfg.Estimate(meta.Name, a) / t)
		costB := ceilF(s.cfg.Estimate(meta.Name, b) / t)
		if costU > costA+costB {
			return region.Box{}, false
		}
	}
	return u, true
}

// dispatchCluster launches one flight for a cluster (or joins an identical
// in-flight call) and wakes the cluster's waiters. Caller holds s.mu.
func (s *Scheduler) dispatchCluster(cl *mergeCluster) {
	record := false
	sources := make([]Request, 0, len(cl.prs))
	for _, pr := range cl.prs {
		record = record || pr.req.Record
		sources = append(sources, pr.req)
	}
	var f *flight
	if len(cl.prs) == 1 {
		// Single request: dispatch its original query verbatim so a delayed
		// solo fetch stays byte-identical to an undelayed one.
		q := cl.prs[0].req.Query
		if ex, ok := s.inflight[flightKey(q)]; ok {
			ex.join(record)
			f = ex
			s.singleflightHits.Add(1)
			s.cfg.Metrics.ObserveSchedSingleflightHit()
		} else {
			f = s.launch(cl.meta, cl.box, q, record, nil)
		}
	} else {
		q, err := catalog.QueryForBox(cl.meta, cl.box)
		if err != nil {
			// fusable pre-validated the union; if conversion still fails,
			// fall back to launching each part separately.
			for _, pr := range cl.prs {
				s.dispatchCluster(&mergeCluster{meta: cl.meta, box: pr.req.Box, prs: []*parked{pr}})
			}
			return
		}
		if ex, ok := s.inflight[flightKey(q)]; ok {
			for range cl.prs {
				ex.join(record)
				s.singleflightHits.Add(1)
				s.cfg.Metrics.ObserveSchedSingleflightHit()
			}
			f = ex
		} else {
			f = s.launch(cl.meta, cl.box, q, record, sources)
		}
	}
	for _, pr := range cl.prs {
		pr.fl = f
		close(pr.ready)
	}
}

func ceilDiv(n, t int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + t - 1) / t
}

func ceilF(x float64) int64 {
	n := int64(x)
	if float64(n) < x {
		n++
	}
	return n
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
