package wal

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the durability layer needs. Production code
// uses OS; the crash suites substitute internal/diskfault's in-memory
// implementation to inject short writes, failed syncs and power cuts at
// every write prefix.
//
// The durability layer's correctness depends on exactly the POSIX crash
// contract this interface models: file contents are durable only after
// File.Sync, and namespace operations (create, rename, remove) are durable
// only after SyncDir on the containing directory.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics for the flags the
	// layer uses: O_RDONLY, O_WRONLY|O_CREATE (with O_APPEND or O_TRUNC).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// MkdirAll creates a directory (and parents) if missing.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir returns the base names of the entries in dir, sorted.
	ReadDir(dir string) ([]string, error)
	// Stat returns the size of name, or an error satisfying
	// os.IsNotExist when it does not exist.
	Stat(name string) (int64, error)
	// SyncDir flushes the directory entry metadata of dir — the fsync
	// that makes a rename/create/remove in dir durable.
	SyncDir(dir string) error
}

// File is the open-file surface the layer needs. Writes are sequential
// (append or fresh-truncate); Truncate discards a torn tail.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// OS is the production FS backed by the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

func (osFS) Stat(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems (and some platforms) refuse fsync on a directory
	// handle; that only loses the rename-durability guarantee the platform
	// never offered, so it is not an error the caller can act on.
	if err := d.Sync(); err != nil && !isSyncUnsupported(err) {
		return err
	}
	return nil
}

func isSyncUnsupported(err error) bool {
	if pe, ok := err.(*os.PathError); ok {
		err = pe.Err
	}
	return err == os.ErrInvalid || err.Error() == "invalid argument" ||
		err.Error() == "operation not supported"
}

// ReadAll reads the whole of name through fs. A missing file returns
// (nil, nil): absent and empty are the same durable state.
func ReadAll(fs FS, name string) ([]byte, error) {
	f, err := fs.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// DirOf returns the directory containing name, for SyncDir calls.
func DirOf(name string) string { return filepath.Dir(name) }
