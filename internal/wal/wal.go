// Package wal is a checksummed, length-prefixed, append-only write-ahead
// log. The semantic store appends one frame per recorded market call before
// the call's coverage becomes visible, so a process crash or power cut can
// lose at most the suffix of calls that were never synced — never corrupt
// what came before, and never invent coverage that was not written.
//
// Frame format (little-endian):
//
//	[4B payload length][4B CRC32-Castagnoli of payload][payload]
//
// Each frame is issued as a single Write, so a torn write tears exactly one
// frame. Replay stops at the first frame whose length is implausible, whose
// payload is short, or whose checksum mismatches, and truncates the file
// there: a torn tail is recovered from, not failed on.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// SyncPolicy selects when appends are fsynced to disk.
type SyncPolicy int

const (
	// SyncPerCall fsyncs after every append: a successful Record is
	// durable the moment it returns. The strongest and slowest policy.
	SyncPerCall SyncPolicy = iota
	// SyncBatched fsyncs every BatchEvery appends (and on Sync/Close/
	// checkpoint): a crash loses at most the current unsynced batch.
	SyncBatched
	// SyncOff never fsyncs: the OS flushes when it pleases. A process
	// crash loses nothing (the kernel holds the pages); only a power cut
	// or kernel panic can lose the unflushed tail.
	SyncOff
)

// String names the policy (the bench and CLI label).
func (p SyncPolicy) String() string {
	switch p {
	case SyncPerCall:
		return "per-call"
	case SyncBatched:
		return "batched"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// DefaultBatchEvery is the SyncBatched fsync cadence when none is given.
const DefaultBatchEvery = 8

// headerSize is the per-frame framing overhead.
const headerSize = 8

// maxFrame bounds a single payload; a length beyond it marks a torn or
// corrupt header during replay.
const maxFrame = 1 << 28 // 256 MiB

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTornLog is wrapped by replay truncation failures.
var ErrTornLog = errors.New("wal: torn log")

// Writer appends frames to a log file. Safe for concurrent use; append
// order under the lock is the replay order.
type Writer struct {
	mu         sync.Mutex
	fs         FS
	path       string
	f          File
	policy     SyncPolicy
	batchEvery int
	pending    int   // appends since the last fsync
	size       int64 // current file size
	appends    int64
	syncs      int64
	broken     error // set when the file may hold a torn frame we failed to roll back
	buf        []byte
}

// NewWriter opens (creating if needed) the log at path for appending.
// size must be the current byte size of the file (what Replay returned),
// so rollback after a failed append can restore the pre-append length.
func NewWriter(fsys FS, path string, size int64, policy SyncPolicy, batchEvery int) (*Writer, error) {
	if batchEvery <= 0 {
		batchEvery = DefaultBatchEvery
	}
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	return &Writer{fs: fsys, path: path, f: f, policy: policy, batchEvery: batchEvery, size: size}, nil
}

// Append writes one frame. synced reports whether the frame (and all before
// it) hit disk before returning — true on every successful append under
// SyncPerCall, true at batch boundaries under SyncBatched, never under
// SyncOff.
//
// A failed append is rolled back by truncating the file to the frame start,
// so the log never accumulates a torn frame mid-file (which would make
// every later frame unreachable to replay). If the rollback itself fails
// the writer turns sticky-broken: all further appends fail until the log is
// re-opened through recovery.
func (w *Writer) Append(payload []byte) (synced bool, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken != nil {
		return false, fmt.Errorf("wal: log broken by earlier failure: %w", w.broken)
	}
	if len(payload) > maxFrame {
		return false, fmt.Errorf("wal: payload %d bytes exceeds frame limit", len(payload))
	}
	need := headerSize + len(payload)
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	frame := w.buf[:need]
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	copy(frame[headerSize:], payload)
	start := w.size
	n, werr := w.f.Write(frame)
	if werr != nil || n != len(frame) {
		if werr == nil {
			werr = fmt.Errorf("wal: short write: %d of %d bytes", n, len(frame))
		}
		// Roll the file back to the frame boundary so the log stays
		// replayable past this failure.
		if terr := w.f.Truncate(start); terr != nil {
			w.broken = fmt.Errorf("append failed (%v) and rollback failed (%v)", werr, terr)
		}
		return false, fmt.Errorf("wal: append: %w", werr)
	}
	w.size += int64(n)
	w.appends++
	w.pending++
	switch w.policy {
	case SyncPerCall:
		return true, w.syncLocked()
	case SyncBatched:
		if w.pending >= w.batchEvery {
			return true, w.syncLocked()
		}
	}
	return false, nil
}

func (w *Writer) syncLocked() error {
	if w.pending == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		// The appended frames are intact in the file (the kernel has
		// them); only their durability is unknown. Leave pending set so
		// the next sync retries.
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.pending = 0
	w.syncs++
	return nil
}

// Sync forces an fsync of all pending appends (a no-op when none are
// pending or the policy already synced them).
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

// Reset truncates the log to empty and syncs — called after a checkpoint
// has made the snapshot durable, so every logged record is already covered.
func (w *Writer) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: reset sync: %w", err)
	}
	w.size = 0
	w.pending = 0
	w.broken = nil
	return nil
}

// Size returns the current log size in bytes.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Stats returns lifetime append and fsync counts.
func (w *Writer) Stats() (appends, syncs int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.appends, w.syncs
}

// Close syncs pending appends (unless the policy is SyncOff) and closes the
// file.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var err error
	if w.policy != SyncOff {
		err = w.syncLocked()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReplayResult describes one replay pass.
type ReplayResult struct {
	// Records is how many intact frames were delivered.
	Records int
	// Size is the log's byte size after any torn-tail truncation — the
	// value to hand NewWriter.
	Size int64
	// Torn reports that a torn or corrupt tail was found and truncated;
	// TornOffset is where the log was cut.
	Torn       bool
	TornOffset int64
}

// Replay reads every intact frame of the log at path in order, calling fn
// with each payload. A missing log is an empty log. A torn tail — short
// header, implausible length, short payload, or checksum mismatch — ends
// the replay and is truncated off (with fsync), restoring the invariant
// that the log is a clean sequence of frames. An fn error aborts the replay
// and is returned as is.
func Replay(fsys FS, path string, fn func(payload []byte) error) (ReplayResult, error) {
	var res ReplayResult
	data, err := ReadAll(fsys, path)
	if err != nil {
		return res, fmt.Errorf("wal: read %s: %w", path, err)
	}
	off := int64(0)
	for {
		rest := data[off:]
		if len(rest) == 0 {
			res.Size = off
			return res, nil
		}
		if len(rest) < headerSize {
			break // torn header
		}
		length := binary.LittleEndian.Uint32(rest[0:4])
		if length > maxFrame || int64(headerSize+int(length)) > int64(len(rest)) {
			break // implausible length or torn payload
		}
		payload := rest[headerSize : headerSize+int(length)]
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(rest[4:8]) {
			break // corrupt payload
		}
		if err := fn(payload); err != nil {
			return res, err
		}
		res.Records++
		off += int64(headerSize + int(length))
	}
	// Torn tail: cut the log back to the last intact frame.
	res.Torn = true
	res.TornOffset = off
	res.Size = off
	f, err := fsys.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return res, fmt.Errorf("%w: open for truncate: %v", ErrTornLog, err)
	}
	defer f.Close()
	if err := f.Truncate(off); err != nil {
		return res, fmt.Errorf("%w: truncate at %d: %v", ErrTornLog, off, err)
	}
	if err := f.Sync(); err != nil {
		return res, fmt.Errorf("%w: sync after truncate: %v", ErrTornLog, err)
	}
	return res, nil
}
