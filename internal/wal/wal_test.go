package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func writeLog(t *testing.T, dir string, policy SyncPolicy, batch int, payloads [][]byte) string {
	t.Helper()
	path := filepath.Join(dir, "wal.log")
	w, err := NewWriter(OS, path, 0, policy, batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func payloadsN(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf(`{"seq":%d,"data":"record-%d-%s"}`, i, i, string(rune('a'+i%26))))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	payloads := payloadsN(20)
	path := writeLog(t, t.TempDir(), SyncPerCall, 0, payloads)
	var got [][]byte
	res, err := Replay(OS, path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn {
		t.Error("clean log reported torn")
	}
	if res.Records != len(payloads) {
		t.Fatalf("replayed %d records, want %d", res.Records, len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
}

func TestReplayMissingLogIsEmpty(t *testing.T) {
	res, err := Replay(OS, filepath.Join(t.TempDir(), "absent.log"), func([]byte) error {
		t.Fatal("no frames expected")
		return nil
	})
	if err != nil || res.Records != 0 || res.Torn {
		t.Fatalf("missing log: %+v, %v", res, err)
	}
}

// TestTornTailAtEveryPrefix truncates a valid log at every byte length and
// asserts replay (a) never fails, (b) yields exactly the frames wholly
// inside the prefix, and (c) truncates the file so a re-opened writer can
// append and the log replays clean again.
func TestTornTailAtEveryPrefix(t *testing.T) {
	payloads := payloadsN(6)
	full, err := os.ReadFile(writeLog(t, t.TempDir(), SyncOff, 0, payloads))
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundary offsets.
	bounds := []int64{0}
	for _, p := range payloads {
		bounds = append(bounds, bounds[len(bounds)-1]+int64(headerSize+len(p)))
	}
	wholeFrames := func(n int64) int {
		k := 0
		for k+1 < len(bounds) && bounds[k+1] <= n {
			k++
		}
		return k
	}
	for cut := 0; cut <= len(full); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got int
		res, err := Replay(OS, path, func(p []byte) error { got++; return nil })
		if err != nil {
			t.Fatalf("cut %d: replay failed: %v", cut, err)
		}
		want := wholeFrames(int64(cut))
		if got != want || res.Records != want {
			t.Fatalf("cut %d: replayed %d frames, want %d", cut, got, want)
		}
		atBoundary := bounds[want] == int64(cut)
		if res.Torn == atBoundary {
			t.Fatalf("cut %d: torn=%v, boundary=%v", cut, res.Torn, atBoundary)
		}
		if res.Size != bounds[want] {
			t.Fatalf("cut %d: size %d, want %d", cut, res.Size, bounds[want])
		}
		// The torn tail must be gone on disk and the log appendable again.
		w, err := NewWriter(OS, path, res.Size, SyncPerCall, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append([]byte("after-recovery")); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		res2, err := Replay(OS, path, func([]byte) error { return nil })
		if err != nil || res2.Torn {
			t.Fatalf("cut %d: second replay torn=%v err=%v", cut, res2.Torn, err)
		}
		if res2.Records != want+1 {
			t.Fatalf("cut %d: second replay %d frames, want %d", cut, res2.Records, want+1)
		}
	}
}

// TestCorruptPayloadStopsReplay flips one payload byte mid-log: replay must
// keep everything before the corrupt frame and truncate it and its
// successors away (they are unreachable once framing is broken).
func TestCorruptPayloadStopsReplay(t *testing.T) {
	payloads := payloadsN(5)
	path := writeLog(t, t.TempDir(), SyncOff, 0, payloads)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte inside frame 2's payload.
	off := 0
	for i := 0; i < 2; i++ {
		off += headerSize + len(payloads[i])
	}
	data[off+headerSize] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(OS, path, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !res.Torn || res.Records != 2 {
		t.Fatalf("corrupt frame: records=%d torn=%v, want 2,true", res.Records, res.Torn)
	}
	if size, _ := OS.Stat(path); size != res.Size {
		t.Fatalf("file not truncated: %d != %d", size, res.Size)
	}
}

func TestSyncPolicies(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range []struct {
		policy    SyncPolicy
		batch     int
		appends   int
		wantSyncs int64
	}{
		{SyncPerCall, 0, 5, 5},
		{SyncBatched, 2, 5, 3}, // 2 batch syncs + 1 close sync
		{SyncOff, 0, 5, 0},
	} {
		path := filepath.Join(dir, tc.policy.String()+".log")
		w, err := NewWriter(OS, path, 0, tc.policy, tc.batch)
		if err != nil {
			t.Fatal(err)
		}
		var syncedCount int
		for i := 0; i < tc.appends; i++ {
			synced, err := w.Append([]byte("x"))
			if err != nil {
				t.Fatal(err)
			}
			if synced {
				syncedCount++
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		_, syncs := w.Stats()
		if syncs != tc.wantSyncs {
			t.Errorf("%v: %d syncs, want %d", tc.policy, syncs, tc.wantSyncs)
		}
		switch tc.policy {
		case SyncPerCall:
			if syncedCount != tc.appends {
				t.Errorf("per-call: %d synced appends, want %d", syncedCount, tc.appends)
			}
		case SyncBatched:
			if syncedCount != tc.appends/tc.batch {
				t.Errorf("batched: %d synced appends, want %d", syncedCount, tc.appends/tc.batch)
			}
		case SyncOff:
			if syncedCount != 0 {
				t.Errorf("off: %d synced appends, want 0", syncedCount)
			}
		}
	}
}

func TestResetEmptiesLog(t *testing.T) {
	path := writeLog(t, t.TempDir(), SyncPerCall, 0, payloadsN(3))
	w, err := NewWriter(OS, path, 0, SyncPerCall, 0) // size ignored for reset
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := Replay(OS, path, func([]byte) error { return nil })
	if err != nil || res.Records != 1 {
		t.Fatalf("after reset: %d records (err %v), want 1", res.Records, err)
	}
}
