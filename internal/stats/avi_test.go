package stats

import (
	"math"
	"testing"

	"payless/internal/region"
)

func box2d(a, b, c, d int64) region.Box {
	return region.NewBox(region.Interval{Lo: a, Hi: b}, region.Interval{Lo: c, Hi: d})
}

func TestAVIUniformColdStart(t *testing.T) {
	a := NewAVI()
	a.Register("R", box2d(0, 100, 0, 10), 1000)
	if got := a.Estimate("R", box2d(0, 100, 0, 10)); got != 1000 {
		t.Errorf("full: %v", got)
	}
	if got := a.Estimate("R", box2d(0, 50, 0, 10)); got != 500 {
		t.Errorf("half on one dim: %v", got)
	}
	if got := a.Estimate("R", box2d(0, 50, 0, 5)); got != 250 {
		t.Errorf("half x half: %v", got)
	}
	if a.Estimate("X", box2d(0, 1, 0, 1)) != 0 {
		t.Error("unknown table")
	}
	if a.Estimate("R", region.NewBox(region.Interval{Lo: 0, Hi: 1})) != 0 {
		t.Error("dim mismatch")
	}
}

func TestAVISingleDimFeedbackExact(t *testing.T) {
	a := NewAVI()
	a.Register("R", box2d(0, 100, 0, 10), 1000)
	// Observe that [0,50) on dim 0 holds 900 of the 1000 rows.
	a.Feedback("R", box2d(0, 50, 0, 10), 900)
	if got := a.Estimate("R", box2d(0, 50, 0, 10)); math.Abs(got-900) > 1e-6 {
		t.Errorf("observed range: %v", got)
	}
	if got := a.Estimate("R", box2d(50, 100, 0, 10)); math.Abs(got-100) > 1e-6 {
		t.Errorf("complement: %v", got)
	}
	if a.BucketCount("R", 0) < 2 {
		t.Error("dimension should have split")
	}
	if a.BucketCount("R", 1) != 1 {
		t.Error("unconstrained dimension must stay whole")
	}
	if a.BucketCount("X", 0) != 0 || a.BucketCount("R", 9) != 0 {
		t.Error("BucketCount bounds")
	}
}

func TestAVIWholeSpaceFeedbackSetsCardinality(t *testing.T) {
	a := NewAVI()
	a.Register("R", box2d(0, 100, 0, 10), 1000)
	a.Feedback("R", box2d(0, 100, 0, 10), 2500)
	if got := a.Estimate("R", box2d(0, 100, 0, 10)); got != 2500 {
		t.Errorf("card update: %v", got)
	}
}

func TestAVIMultiDimFeedbackApportions(t *testing.T) {
	a := NewAVI()
	a.Register("R", box2d(0, 100, 0, 10), 1000)
	// The corner [0,50)x[0,5) uniformly estimates 250; observe 640.
	a.Feedback("R", box2d(0, 50, 0, 5), 640)
	got := a.Estimate("R", box2d(0, 50, 0, 5))
	if math.Abs(got-640) > 1 {
		t.Errorf("corner after feedback: %v, want ≈640", got)
	}
	// Independence apportions √ratio to each axis (p0 = p1 = 0.8), so the
	// flank [0,50)x[5,10) estimates 1000·0.8·0.2 = 160 — the structured
	// smear that distinguishes AVI from the consistent store.
	flank := a.Estimate("R", box2d(0, 50, 5, 10))
	if math.Abs(flank-160) > 1 {
		t.Errorf("flank: %v, want ≈160", flank)
	}
	// Total mass is conserved.
	if total := a.Estimate("R", box2d(0, 100, 0, 10)); math.Abs(total-1000) > 1 {
		t.Errorf("total: %v, want ≈1000", total)
	}
}

func TestAVIFeedbackIgnoresUnknownAndEmpty(t *testing.T) {
	a := NewAVI()
	a.Register("R", box2d(0, 10, 0, 10), 100)
	a.Feedback("X", box2d(0, 1, 0, 1), 5)
	a.Feedback("R", region.NewBox(region.Interval{Lo: 3, Hi: 3}, region.Interval{Lo: 0, Hi: 10}), 5)
	if got := a.Estimate("R", box2d(0, 10, 0, 10)); got != 100 {
		t.Errorf("no-op feedback changed state: %v", got)
	}
}

func TestAVIZeroThenRelearn(t *testing.T) {
	a := NewAVI()
	a.Register("R", box2d(0, 100, 0, 10), 1000)
	a.Feedback("R", box2d(0, 50, 0, 10), 0)
	if got := a.Estimate("R", box2d(0, 50, 0, 10)); got != 0 {
		t.Errorf("zeroed region: %v", got)
	}
	a.Feedback("R", box2d(0, 25, 0, 10), 100)
	if got := a.Estimate("R", box2d(0, 25, 0, 10)); got <= 0 {
		t.Errorf("re-learned region must be positive: %v", got)
	}
}

// TestAVIVsStoreOnCorrelatedData shows why the paper reaches for a
// consistent multidimensional statistic: on perfectly correlated
// dimensions the Store pins the observed region exactly while AVI smears
// probability mass onto empty corners.
func TestAVIVsStoreOnCorrelatedData(t *testing.T) {
	full := box2d(0, 100, 0, 100)
	// All 1000 rows live on the diagonal block [0,50)x[0,50).
	obs := box2d(0, 50, 0, 50)
	empty := box2d(0, 50, 50, 100)

	st := New()
	st.Register("R", full, 1000)
	st.Feedback("R", obs, 1000)
	st.Feedback("R", empty, 0)

	avi := NewAVI()
	avi.Register("R", full, 1000)
	avi.Feedback("R", obs, 1000)
	avi.Feedback("R", empty, 0)

	storeErr := math.Abs(st.Estimate("R", obs)-1000) + math.Abs(st.Estimate("R", empty)-0)
	aviErr := math.Abs(avi.Estimate("R", obs)-1000) + math.Abs(avi.Estimate("R", empty)-0)
	if storeErr > aviErr {
		t.Errorf("the consistent store should beat AVI on correlated data: store %.1f vs avi %.1f",
			storeErr, aviErr)
	}
}
