package stats

import (
	"math"
	"sync"
	"sync/atomic"

	"payless/internal/region"
)

// AVI is an alternative updatable statistic (the paper notes PayLess "is
// indeed amenable for any updatable statistic", §3): one feedback-refined
// one-dimensional partition per queryable attribute, combined under the
// attribute-value-independence assumption. Compared with the Store's
// consistent multidimensional partition, AVI is cheaper to maintain but
// mis-estimates correlated attributes — which is exactly the contrast the
// statistics ablation benchmark measures.
type AVI struct {
	mu      sync.RWMutex
	tables  map[string]*aviTable
	version atomic.Uint64
}

type aviTable struct {
	full region.Box
	card float64
	// dims[d] partitions the d-th axis; bucket fractions sum to 1 per axis.
	dims [][]bucket1
}

type bucket1 struct {
	iv   region.Interval
	frac float64
}

// NewAVI returns an empty AVI estimator.
func NewAVI() *AVI {
	return &AVI{tables: make(map[string]*aviTable)}
}

// Register declares a table's queryable space and published cardinality.
func (a *AVI) Register(table string, full region.Box, card int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t := &aviTable{full: full.Clone(), card: float64(card)}
	for _, iv := range full.Dims {
		t.dims = append(t.dims, []bucket1{{iv: iv, frac: 1}})
	}
	a.tables[table] = t
	a.version.Add(1)
}

// Version returns the estimator's mutation counter (see Store.Version).
func (a *AVI) Version() uint64 { return a.version.Load() }

// fracIn returns the estimated fraction of rows whose d-th coordinate lies
// in iv, assuming uniformity within buckets.
func (t *aviTable) fracIn(d int, iv region.Interval) float64 {
	var frac float64
	for _, b := range t.dims[d] {
		x, ok := b.iv.Intersect(iv)
		if !ok {
			continue
		}
		w := b.iv.Width()
		if w <= 0 {
			continue
		}
		frac += b.frac * float64(x.Width()) / float64(w)
	}
	return frac
}

// Estimate combines per-dimension selectivities under independence.
func (a *AVI) Estimate(table string, b region.Box) float64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	t, ok := a.tables[table]
	if !ok || b.Empty() || b.D() != len(t.dims) {
		return 0
	}
	est := t.card
	for d, iv := range b.Dims {
		est *= t.fracIn(d, iv)
	}
	return est
}

// split ensures bucket boundaries exist at iv's edges on dimension d.
func (t *aviTable) split(d int, iv region.Interval) {
	var out []bucket1
	for _, b := range t.dims[d] {
		x, ok := b.iv.Intersect(iv)
		if !ok || x.Equal(b.iv) {
			out = append(out, b)
			continue
		}
		w := float64(b.iv.Width())
		pieces := []region.Interval{
			{Lo: b.iv.Lo, Hi: x.Lo},
			x,
			{Lo: x.Hi, Hi: b.iv.Hi},
		}
		for _, p := range pieces {
			if p.Empty() {
				continue
			}
			out = append(out, bucket1{iv: p, frac: b.frac * float64(p.Width()) / w})
		}
	}
	t.dims[d] = out
}

// Feedback refines the per-dimension partitions. The observed-to-estimated
// ratio is apportioned evenly (in the geometric sense) across the
// constrained dimensions; each dimension's partition is renormalised so
// fractions keep summing to 1. Whole-space feedback updates the
// cardinality exactly.
func (a *AVI) Feedback(table string, b region.Box, n int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	t, ok := a.tables[table]
	if !ok || b.Empty() || b.D() != len(t.dims) {
		return
	}
	a.version.Add(1)
	var constrained []int
	for d, iv := range b.Dims {
		if !iv.Equal(t.full.Dims[d]) {
			constrained = append(constrained, d)
		}
	}
	if len(constrained) == 0 {
		t.card = float64(n)
		return
	}
	est := t.card
	for d, iv := range b.Dims {
		est *= t.fracIn(d, iv)
	}
	if t.card <= 0 {
		return
	}
	var ratio float64
	if est > 0 {
		ratio = float64(n) / est
	} else if n > 0 {
		// Re-learning a zeroed region: seed it uniformly.
		ratio = 0
	}
	perDim := 1.0
	if est > 0 {
		perDim = math.Pow(ratio, 1/float64(len(constrained)))
	}
	for _, d := range constrained {
		iv := b.Dims[d]
		t.split(d, iv)
		inFrac := t.fracIn(d, iv)
		var target float64
		if est > 0 {
			target = inFrac * perDim
		} else {
			// Seed: assume the observation is uniform over the range.
			target = float64(n) / math.Max(t.card, 1)
		}
		if target > 0.9999 {
			target = 0.9999
		}
		if target < 0 {
			target = 0
		}
		outFrac := 1 - inFrac
		for i := range t.dims[d] {
			bk := &t.dims[d][i]
			if iv.Contains(bk.iv) {
				if inFrac > 0 {
					bk.frac *= target / inFrac
				} else {
					bk.frac = target * float64(bk.iv.Width()) / float64(iv.Width())
				}
			} else if outFrac > 0 {
				bk.frac *= (1 - target) / outFrac
			}
		}
	}
}

// BucketCount reports the partition size of one dimension (for tests).
func (a *AVI) BucketCount(table string, dim int) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	t, ok := a.tables[table]
	if !ok || dim < 0 || dim >= len(t.dims) {
		return 0
	}
	return len(t.dims[dim])
}
