package stats

import (
	"math"
	"math/rand"
	"testing"

	"payless/internal/region"
)

func box1d(lo, hi int64) region.Box { return region.NewBox(region.Interval{Lo: lo, Hi: hi}) }

func TestUniformEstimate(t *testing.T) {
	s := NewUniform()
	s.Register("R", box1d(0, 100), 1000)
	if !s.Registered("R") || s.Registered("X") {
		t.Error("Registered")
	}
	if got := s.Estimate("R", box1d(0, 100)); got != 1000 {
		t.Errorf("full box estimate: %v", got)
	}
	if got := s.Estimate("R", box1d(0, 10)); got != 100 {
		t.Errorf("10%% estimate: %v", got)
	}
	if got := s.Estimate("R", box1d(200, 300)); got != 0 {
		t.Errorf("outside estimate: %v", got)
	}
	if got := s.Estimate("X", box1d(0, 1)); got != 0 {
		t.Errorf("unknown table: %v", got)
	}
	if got := s.Estimate("R", box1d(5, 5)); got != 0 {
		t.Errorf("empty box: %v", got)
	}
	// Uniform store ignores feedback.
	s.Feedback("R", box1d(0, 10), 900)
	if got := s.Estimate("R", box1d(0, 10)); got != 100 {
		t.Errorf("uniform must ignore feedback: %v", got)
	}
}

func TestFeedbackExactInsideObservedBox(t *testing.T) {
	s := New()
	s.Register("R", box1d(0, 100), 1000)
	s.Feedback("R", box1d(0, 10), 600)
	if got := s.Estimate("R", box1d(0, 10)); math.Abs(got-600) > 1e-9 {
		t.Errorf("observed box estimate: %v, want 600", got)
	}
	// Outside keeps proportional share of the remainder: 1000*0.9=900.
	if got := s.Estimate("R", box1d(10, 100)); math.Abs(got-900) > 1e-9 {
		t.Errorf("outside estimate: %v, want 900", got)
	}
	if got := s.Total("R"); math.Abs(got-1500) > 1e-9 {
		t.Errorf("total: %v, want 1500", got)
	}
	if s.Total("X") != 0 {
		t.Error("total of unknown table")
	}
}

func TestFeedbackZeroCount(t *testing.T) {
	s := New()
	s.Register("R", box1d(0, 100), 1000)
	s.Feedback("R", box1d(20, 40), 0)
	if got := s.Estimate("R", box1d(20, 40)); got != 0 {
		t.Errorf("zeroed region must estimate 0: %v", got)
	}
	if got := s.Estimate("R", box1d(25, 35)); got != 0 {
		t.Errorf("sub-region of zeroed region: %v", got)
	}
}

func TestFeedbackOnZeroEstimateRegion(t *testing.T) {
	s := New()
	s.Register("R", box1d(0, 100), 1000)
	s.Feedback("R", box1d(0, 50), 0)
	// Now a sub-box of the zeroed half learns a positive count: the sum
	// branch is zero, so the count distributes by volume.
	s.Feedback("R", box1d(10, 30), 200)
	if got := s.Estimate("R", box1d(10, 30)); math.Abs(got-200) > 1e-9 {
		t.Errorf("re-learned region: %v, want 200", got)
	}
}

func TestFeedback2D(t *testing.T) {
	s := New()
	full := region.NewBox(region.Interval{Lo: 0, Hi: 10}, region.Interval{Lo: 0, Hi: 10})
	s.Register("R", full, 100)
	obs := region.NewBox(region.Interval{Lo: 0, Hi: 5}, region.Interval{Lo: 0, Hi: 5})
	s.Feedback("R", obs, 80)
	if got := s.Estimate("R", obs); math.Abs(got-80) > 1e-9 {
		t.Errorf("2d observed: %v", got)
	}
	// The whole space now estimates 80 + 75 (remaining three quadrants kept
	// their uniform shares: 100*(75/100)=75).
	if got := s.Estimate("R", full); math.Abs(got-155) > 1e-9 {
		t.Errorf("2d total: %v, want 155", got)
	}
}

func TestFeedbackUnknownTableAndEmptyBox(t *testing.T) {
	s := New()
	s.Register("R", box1d(0, 10), 10)
	s.Feedback("X", box1d(0, 1), 5) // must not panic
	s.Feedback("R", box1d(3, 3), 5) // empty box ignored
	if got := s.Estimate("R", box1d(0, 10)); got != 10 {
		t.Errorf("estimate after no-op feedback: %v", got)
	}
}

func TestBucketCap(t *testing.T) {
	s := New()
	s.maxBuckets = 4
	s.Register("R", box1d(0, 1000), 1000)
	for i := int64(0); i < 50; i++ {
		s.Feedback("R", box1d(i*10, i*10+10), 5)
	}
	if got := s.BucketCount("R"); got > 2*s.maxBuckets {
		t.Errorf("bucket count %d exceeds cap headroom", got)
	}
	if s.BucketCount("X") != 0 {
		t.Error("BucketCount of unknown table")
	}
}

// Property: after feedback, the estimate for the exact observed box matches
// the observation, for random non-overlapping learning sequences.
func TestFeedbackConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		s := New()
		s.Register("R", box1d(0, 1000), 5000)
		lo := int64(0)
		type obs struct {
			b region.Box
			n int64
		}
		var observations []obs
		for lo < 900 {
			w := rng.Int63n(80) + 1
			b := box1d(lo, lo+w)
			n := rng.Int63n(200)
			s.Feedback("R", b, n)
			observations = append(observations, obs{b, n})
			lo += w + rng.Int63n(20)
		}
		for _, o := range observations {
			got := s.Estimate("R", o.b)
			if math.Abs(got-float64(o.n)) > 1e-6 {
				t.Fatalf("trial %d: estimate %v for observed %d in %v", trial, got, o.n, o.b)
			}
		}
	}
}

func TestReRegisterResets(t *testing.T) {
	s := New()
	s.Register("R", box1d(0, 100), 1000)
	s.Feedback("R", box1d(0, 10), 999)
	s.Register("R", box1d(0, 100), 1000)
	if got := s.Estimate("R", box1d(0, 10)); got != 100 {
		t.Errorf("re-register must reset: %v", got)
	}
}
