// Package stats implements PayLess's updatable statistics (paper §3 step 5.4,
// §4.3). The optimizer starts from the market's basic statistics only —
// attribute domains and table cardinality — using the textbook uniform
// assumption, and refines its knowledge from query feedback: every executed
// RESTful call reports the exact number of tuples found in its box.
//
// The paper plugs in ISOMER [44] and notes the system "is indeed amenable for
// any updatable statistic". This package implements a feedback histogram in
// the STHoles/ISOMER family: each table's queryable space is maintained as a
// partition of disjoint buckets; feedback splits the overlapped buckets along
// the observed box and rescales the inside pieces to the observed count, so
// the histogram stays consistent with all non-conflicting feedback and
// converges as more of the space is observed.
package stats

import (
	"sync"
	"sync/atomic"

	"payless/internal/region"
)

// Estimator estimates how many rows of a table fall inside a box, and
// accepts execution feedback. Implementations must be safe for concurrent
// use.
type Estimator interface {
	// Estimate returns the expected number of rows of the table inside b.
	Estimate(table string, b region.Box) float64
	// Feedback records that an executed call covering box b returned n rows.
	Feedback(table string, b region.Box, n int64)
}

// bucket is one cell of a table's partition: a box and the estimated number
// of rows inside it. Buckets of a table are pairwise disjoint and their
// union is the table's full queryable space.
type bucket struct {
	box   region.Box
	count float64
}

type tableStats struct {
	full    region.Box
	buckets []bucket
}

// Store is the default Estimator. With learning enabled it refines bucket
// partitions from feedback; with learning disabled it behaves as the plain
// uniform estimator the paper uses before any statistics are collected.
type Store struct {
	mu       sync.RWMutex
	tables   map[string]*tableStats
	learning bool
	// maxBuckets caps the partition size per table; feedback that would
	// exceed the cap degrades to proportional rescaling without splitting.
	maxBuckets int
	// version counts mutations (Register and effective Feedback). The plan
	// cache snapshots it: a moved version means estimates may have changed
	// enough to flip the winning plan, so cached skeletons are discarded.
	version atomic.Uint64
}

// New returns a learning statistics store (feedback refines estimates).
func New() *Store {
	return &Store{tables: make(map[string]*tableStats), learning: true, maxBuckets: 8192}
}

// NewUniform returns a store that ignores feedback and always estimates by
// the uniform-distribution assumption over the published cardinality.
func NewUniform() *Store {
	return &Store{tables: make(map[string]*tableStats), learning: false, maxBuckets: 1}
}

// Register declares a table's queryable space and published cardinality.
// Re-registering resets the table's statistics.
func (s *Store) Register(table string, full region.Box, card int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[table] = &tableStats{
		full:    full.Clone(),
		buckets: []bucket{{box: full.Clone(), count: float64(card)}},
	}
	s.version.Add(1)
}

// Version returns the store's mutation counter. NewUniform stores never
// learn, so their version only moves on Register.
func (s *Store) Version() uint64 { return s.version.Load() }

// Registered reports whether the table is known to the store.
func (s *Store) Registered(table string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.tables[table]
	return ok
}

// BucketCount returns the current partition size of the table (for tests
// and introspection).
func (s *Store) BucketCount(table string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if t, ok := s.tables[table]; ok {
		return len(t.buckets)
	}
	return 0
}

// Estimate returns the expected number of rows of the table inside b,
// assuming uniformity within each bucket. Unknown tables estimate 0.
func (s *Store) Estimate(table string, b region.Box) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok || b.Empty() {
		return 0
	}
	var est float64
	for _, bk := range t.buckets {
		x, ok := bk.box.Intersect(b)
		if !ok {
			continue
		}
		bv := bk.box.Volume()
		if bv <= 0 {
			continue
		}
		est += bk.count * (x.Volume() / bv)
	}
	return est
}

// Feedback records that a call covering box b observed exactly n rows.
// Buckets partially overlapping b are split along b so the inside pieces can
// be rescaled to sum to n; outside pieces keep their proportional share.
// When the partition cap is reached, only rescaling happens (no splits), so
// memory stays bounded at the cost of precision.
func (s *Store) Feedback(table string, b region.Box, n int64) {
	if !s.learning {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tables[table]
	if !ok || b.Empty() {
		return
	}
	s.version.Add(1)
	canSplit := len(t.buckets) < s.maxBuckets
	var next []bucket
	var inside []int // indexes into next of pieces inside b
	for _, bk := range t.buckets {
		x, overlaps := bk.box.Intersect(b)
		if !overlaps {
			next = append(next, bk)
			continue
		}
		if x.Equal(bk.box) {
			// Whole bucket inside b.
			inside = append(inside, len(next))
			next = append(next, bk)
			continue
		}
		if !canSplit {
			// Degraded mode: treat the overlap fraction of this bucket as
			// inside, without splitting. We approximate by keeping the bucket
			// whole and scaling it later by the blended factor; to stay
			// simple and conservative we leave it untouched.
			next = append(next, bk)
			continue
		}
		bv := bk.box.Volume()
		frac := 0.0
		if bv > 0 {
			frac = x.Volume() / bv
		}
		insidePiece := bucket{box: x, count: bk.count * frac}
		inside = append(inside, len(next))
		next = append(next, insidePiece)
		for _, rem := range region.Subtract(bk.box, []region.Box{x}) {
			remFrac := 0.0
			if bv > 0 {
				remFrac = rem.Volume() / bv
			}
			next = append(next, bucket{box: rem, count: bk.count * remFrac})
		}
	}
	// Rescale the inside pieces so they sum to the observed count.
	var sum float64
	for _, i := range inside {
		sum += next[i].count
	}
	switch {
	case len(inside) == 0:
		// Nothing splittable overlapped; no refinement possible.
	case sum <= 0:
		// Distribute the observed count by volume.
		var vol float64
		for _, i := range inside {
			vol += next[i].box.Volume()
		}
		for _, i := range inside {
			if vol > 0 {
				next[i].count = float64(n) * next[i].box.Volume() / vol
			} else {
				next[i].count = float64(n) / float64(len(inside))
			}
		}
	default:
		scale := float64(n) / sum
		for _, i := range inside {
			next[i].count *= scale
		}
	}
	t.buckets = next
}

// Total returns the store's current estimate of the table's cardinality.
func (s *Store) Total(table string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[table]
	if !ok {
		return 0
	}
	var sum float64
	for _, bk := range t.buckets {
		sum += bk.count
	}
	return sum
}
