package workload

import (
	"math"
	"math/rand"
)

// Zipf draws integers in [1, n] with probability P(k) ∝ 1/k^z, matching the
// TPC-D skew generator of Chaudhuri and Narasayya [19] that the paper uses
// with z = 1. z = 0 degenerates to uniform.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes the distribution over [1, n].
func NewZipf(n int, z float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		sum += 1 / math.Pow(float64(k), z)
		cdf[k-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Draw samples one value in [1, n].
func (zf *Zipf) Draw(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(zf.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if zf.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
