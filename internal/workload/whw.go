// Package workload generates the paper's evaluation workloads (§5):
//
//   - the real-data stand-in: synthetic Worldwide Historical Weather (WHW)
//     and Environmental Hazard Rank (EHR) datasets with the schemas, access
//     patterns and relative sizes of Fig. 1a, plus the local ZipMap table,
//     and the five query templates of Table 1;
//   - TPC-H-shaped data at configurable scale, with an optional Zipf(z=1)
//     skew [19], and range-parameterised query templates whose parametric
//     attributes are all free, with Nation and Region local.
//
// All generators are deterministic given a seed, so experiments repeat.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"payless/internal/catalog"
	"payless/internal/market"
	"payless/internal/storage"
	"payless/internal/value"
)

// WHWConfig scales the weather/pollution data. The paper's real datasets
// (Station 3 962 rows, Weather 19 549 140 rows, Pollution 44 210 rows) are
// scaled down by default; relative shapes — stations per country, days per
// station, the station→weather join fan-out — are preserved.
type WHWConfig struct {
	Seed int64
	// Countries is the number of countries (the first is "United States").
	Countries int
	// StationsPerCountry is the average station count per country.
	StationsPerCountry int
	// CitiesPerCountry bounds how many cities a country's stations spread over.
	CitiesPerCountry int
	// Days is the number of consecutive calendar days of weather history,
	// starting at StartDate.
	Days int
	// StartDate is the first day in YYYYMMDD form.
	StartDate int64
	// Zips is the Pollution table size; each zip maps to a city in ZipMap.
	Zips int
	// MaxRank bounds the pollution rank domain [1, MaxRank].
	MaxRank int64
}

// DefaultWHWConfig returns the scale used by the benchmark harness.
func DefaultWHWConfig() WHWConfig {
	return WHWConfig{
		Seed:               1,
		Countries:          20,
		StationsPerCountry: 30,
		CitiesPerCountry:   8,
		Days:               120,
		StartDate:          20140401,
		Zips:               800,
		MaxRank:            1000,
	}
}

// WHW holds the generated datasets plus their catalog metadata.
type WHW struct {
	Config WHWConfig

	Station   *catalog.Table
	Weather   *catalog.Table
	Pollution *catalog.Table
	ZipMap    *catalog.Table

	StationRows   []value.Row
	WeatherRows   []value.Row
	PollutionRows []value.Row
	ZipMapRows    []value.Row

	// Countries, Cities and Dates are the generated domains.
	Countries []string
	Cities    []string
	Dates     []int64
	Zips      []string

	// CityByZip maps each zip code to its city (the ZipMap contents).
	CityByZip map[string]string
	// StationCities maps country -> set of cities that have stations there.
	StationCities map[string]map[string]bool
}

// DateSeq returns n consecutive calendar days starting at start (YYYYMMDD).
func DateSeq(start int64, n int) []int64 {
	t := time.Date(int(start/10000), time.Month(start/100%100), int(start%100), 0, 0, 0, 0, time.UTC)
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		d := t.AddDate(0, 0, i)
		out[i] = int64(d.Year()*10000 + int(d.Month())*100 + d.Day())
	}
	return out
}

// GenerateWHW builds the synthetic WHW + EHR + ZipMap data.
func GenerateWHW(cfg WHWConfig) *WHW {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &WHW{Config: cfg}

	w.Countries = append(w.Countries, "United States")
	for i := 1; i < cfg.Countries; i++ {
		w.Countries = append(w.Countries, fmt.Sprintf("Country%02d", i))
	}
	w.Dates = DateSeq(cfg.StartDate, cfg.Days)

	// Cities: "Seattle" exists in the United States, as in the paper's
	// running example.
	cityOf := make(map[string][]string)
	for ci, country := range w.Countries {
		var cities []string
		n := cfg.CitiesPerCountry
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			cities = append(cities, fmt.Sprintf("City_%02d_%02d", ci, k))
		}
		if country == "United States" {
			cities[0] = "Seattle"
		}
		cityOf[country] = cities
		w.Cities = append(w.Cities, cities...)
	}

	// Stations.
	stationID := int64(1000)
	type stationRec struct {
		country string
		id      int64
		city    string
	}
	var stations []stationRec
	for _, country := range w.Countries {
		n := cfg.StationsPerCountry/2 + rng.Intn(cfg.StationsPerCountry+1)
		cities := cityOf[country]
		for k := 0; k < n; k++ {
			stationID++
			city := cities[rng.Intn(len(cities))]
			stations = append(stations, stationRec{country: country, id: stationID, city: city})
		}
	}
	w.StationCities = make(map[string]map[string]bool)
	for _, s := range stations {
		w.StationRows = append(w.StationRows, value.Row{
			value.NewString(s.country), value.NewInt(s.id), value.NewString(s.city),
		})
		if w.StationCities[s.country] == nil {
			w.StationCities[s.country] = make(map[string]bool)
		}
		w.StationCities[s.country][s.city] = true
	}

	// Weather: one record per station per day.
	for _, s := range stations {
		base := 5 + rng.Float64()*20
		for _, d := range w.Dates {
			temp := base + rng.Float64()*10 - 5
			w.WeatherRows = append(w.WeatherRows, value.Row{
				value.NewString(s.country), value.NewInt(s.id), value.NewInt(d), value.NewFloat(temp),
			})
		}
	}

	// Pollution + ZipMap: each zip belongs to one city.
	w.CityByZip = make(map[string]string)
	for i := 0; i < cfg.Zips; i++ {
		zip := fmt.Sprintf("%05d", 10000+i)
		w.Zips = append(w.Zips, zip)
		city := w.Cities[rng.Intn(len(w.Cities))]
		rank := rng.Int63n(cfg.MaxRank) + 1
		w.PollutionRows = append(w.PollutionRows, value.Row{
			value.NewString(zip), value.NewInt(rank),
			value.NewFloat(-90 + rng.Float64()*180), value.NewFloat(-180 + rng.Float64()*360),
		})
		w.ZipMapRows = append(w.ZipMapRows, value.Row{value.NewString(zip), value.NewString(city)})
		w.CityByZip[zip] = city
	}

	w.buildMeta()
	return w
}

func strDomain(ss []string) []value.Value {
	out := make([]value.Value, len(ss))
	for i, s := range ss {
		out[i] = value.NewString(s)
	}
	return out
}

func (w *WHW) buildMeta() {
	cfg := w.Config
	minDate, maxDate := w.Dates[0], w.Dates[len(w.Dates)-1]
	minSID, maxSID := int64(1001), int64(1000+len(w.StationRows))

	w.Station = &catalog.Table{
		Name: "Station",
		Schema: value.Schema{
			{Name: "Country", Type: value.String},
			{Name: "StationID", Type: value.Int},
			{Name: "City", Type: value.String},
		},
		Attrs: []catalog.Attribute{
			{Name: "Country", Type: value.String, Binding: catalog.Free, Class: catalog.CategoricalAttr, Domain: strDomain(w.Countries)},
			{Name: "StationID", Type: value.Int, Binding: catalog.Free, Class: catalog.NumericAttr, Min: minSID, Max: maxSID},
			{Name: "City", Type: value.String, Binding: catalog.Free, Class: catalog.CategoricalAttr, Domain: strDomain(w.Cities)},
		},
	}
	w.Weather = &catalog.Table{
		Name: "Weather",
		Schema: value.Schema{
			{Name: "Country", Type: value.String},
			{Name: "StationID", Type: value.Int},
			{Name: "Date", Type: value.Int},
			{Name: "Temperature", Type: value.Float},
		},
		Attrs: []catalog.Attribute{
			{Name: "Country", Type: value.String, Binding: catalog.Free, Class: catalog.CategoricalAttr, Domain: strDomain(w.Countries)},
			{Name: "StationID", Type: value.Int, Binding: catalog.Free, Class: catalog.NumericAttr, Min: minSID, Max: maxSID},
			{Name: "Date", Type: value.Int, Binding: catalog.Free, Class: catalog.NumericAttr, Min: minDate, Max: maxDate},
			{Name: "Temperature", Type: value.Float, Binding: catalog.Output},
		},
	}
	w.Pollution = &catalog.Table{
		Name: "Pollution",
		Schema: value.Schema{
			{Name: "ZipCode", Type: value.String},
			{Name: "Rank", Type: value.Int},
			{Name: "Latitude", Type: value.Float},
			{Name: "Longitude", Type: value.Float},
		},
		Attrs: []catalog.Attribute{
			{Name: "ZipCode", Type: value.String, Binding: catalog.Free, Class: catalog.CategoricalAttr, Domain: strDomain(w.Zips)},
			{Name: "Rank", Type: value.Int, Binding: catalog.Free, Class: catalog.NumericAttr, Min: 1, Max: cfg.MaxRank},
			{Name: "Latitude", Type: value.Float, Binding: catalog.Output},
			{Name: "Longitude", Type: value.Float, Binding: catalog.Output},
		},
	}
	w.ZipMap = &catalog.Table{
		Name:  "ZipMap",
		Local: true,
		Schema: value.Schema{
			{Name: "ZipCode", Type: value.String},
			{Name: "City", Type: value.String},
		},
		Attrs: []catalog.Attribute{
			{Name: "ZipCode", Type: value.String, Binding: catalog.Free, Class: catalog.CategoricalAttr, Domain: strDomain(w.Zips)},
			{Name: "City", Type: value.String, Binding: catalog.Free, Class: catalog.CategoricalAttr, Domain: strDomain(w.Cities)},
		},
		Cardinality: int64(len(w.ZipMapRows)),
	}
}

// Install publishes the WHW and EHR datasets on a market with the given
// page size, and loads ZipMap into the local DBMS.
func (w *WHW) Install(m *market.Market, db *storage.DB, tuplesPerTransaction int, price float64) error {
	whw, err := m.AddDataset("WHW", tuplesPerTransaction, price)
	if err != nil {
		return err
	}
	if err := whw.AddTable(w.Station, w.StationRows); err != nil {
		return err
	}
	if err := whw.AddTable(w.Weather, w.WeatherRows); err != nil {
		return err
	}
	ehr, err := m.AddDataset("EHR", tuplesPerTransaction, price)
	if err != nil {
		return err
	}
	if err := ehr.AddTable(w.Pollution, w.PollutionRows); err != nil {
		return err
	}
	tbl, err := db.Ensure("ZipMap", w.ZipMap.Schema)
	if err != nil {
		return err
	}
	_, err = tbl.Insert(w.ZipMapRows)
	return err
}
