package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Template is one parameterised query template; Instantiate draws a valid
// query instance (one that returns non-empty results, per §5).
type Template struct {
	Name        string
	Instantiate func(rng *rand.Rand) string
}

// dateRange draws a closed subrange of the generated dates.
func (w *WHW) dateRange(rng *rand.Rand, maxSpan int) (int64, int64) {
	n := len(w.Dates)
	span := 1 + rng.Intn(minInt(maxSpan, n))
	start := rng.Intn(n - span + 1)
	return w.Dates[start], w.Dates[start+span-1]
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// countryWithStations draws a country that actually has weather stations.
func (w *WHW) countryWithStations(rng *rand.Rand) string {
	for {
		c := w.Countries[rng.Intn(len(w.Countries))]
		if len(w.StationCities[c]) > 0 {
			return c
		}
	}
}

// zipForCountry draws a zip code whose city has a station in the country,
// so the Q4/Q5 joins are non-empty. Returns "" when none exists.
func (w *WHW) zipForCountry(rng *rand.Rand, country string) string {
	cities := w.StationCities[country]
	var candidates []string
	for zip, city := range w.CityByZip {
		if cities[city] {
			candidates = append(candidates, zip)
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	sort.Strings(candidates)
	return candidates[rng.Intn(len(candidates))]
}

// Templates returns the paper's Table 1 query templates (Q1–Q5) backed by
// this dataset's domains.
func (w *WHW) Templates() []Template {
	return []Template{
		{
			Name: "Q1",
			Instantiate: func(rng *rand.Rand) string {
				c := w.countryWithStations(rng)
				lo, hi := w.dateRange(rng, 14)
				return fmt.Sprintf(
					"SELECT * FROM Weather WHERE Weather.Country = '%s' AND Weather.Date >= %d AND Weather.Date <= %d",
					c, lo, hi)
			},
		},
		{
			Name: "Q2",
			Instantiate: func(rng *rand.Rand) string {
				span := rng.Int63n(w.Config.MaxRank/4) + 1
				lo := rng.Int63n(w.Config.MaxRank-span) + 1
				return fmt.Sprintf(
					"SELECT COUNT(ZipCode) FROM Pollution WHERE Pollution.Rank >= %d AND Pollution.Rank <= %d",
					lo, lo+span)
			},
		},
		{
			Name: "Q3",
			Instantiate: func(rng *rand.Rand) string {
				c := w.countryWithStations(rng)
				lo, hi := w.dateRange(rng, 14)
				return fmt.Sprintf(
					"SELECT City, AVG(Temperature) FROM Station, Weather "+
						"WHERE Station.Country = Weather.Country = '%s' AND Weather.Date >= %d AND Weather.Date <= %d "+
						"AND Station.StationID = Weather.StationID GROUP BY City",
					c, lo, hi)
			},
		},
		{
			Name: "Q4",
			Instantiate: func(rng *rand.Rand) string {
				for {
					c := w.countryWithStations(rng)
					zip := w.zipForCountry(rng, c)
					if zip == "" {
						continue
					}
					lo, hi := w.dateRange(rng, 14)
					return fmt.Sprintf(
						"SELECT Temperature FROM Station, Weather, ZipMap "+
							"WHERE Station.Country = Weather.Country = '%s' AND ZipMap.ZipCode = '%s' "+
							"AND Weather.Date >= %d AND Weather.Date <= %d "+
							"AND Station.StationID = Weather.StationID AND Station.City = ZipMap.City",
						c, zip, lo, hi)
				}
			},
		},
		{
			Name: "Q5",
			Instantiate: func(rng *rand.Rand) string {
				c := w.countryWithStations(rng)
				lo, hi := w.dateRange(rng, 14)
				span := rng.Int63n(w.Config.MaxRank/2) + w.Config.MaxRank/4
				rlo := rng.Int63n(maxI64(w.Config.MaxRank-span, 1)) + 1
				return fmt.Sprintf(
					"SELECT * FROM Pollution, Station, Weather, ZipMap "+
						"WHERE Station.Country = Weather.Country = '%s' AND Weather.Date >= %d AND Weather.Date <= %d "+
						"AND Pollution.Rank >= %d AND Pollution.Rank <= %d "+
						"AND Pollution.ZipCode = ZipMap.ZipCode AND ZipMap.City = Station.City "+
						"AND Station.StationID = Weather.StationID",
					c, lo, hi, rlo, rlo+span)
			},
		},
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Mix builds a shuffled workload of q instances per template, as the
// paper's experiments issue them ("query instances are issued in a random
// order").
func Mix(templates []Template, q int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	var out []string
	for _, t := range templates {
		for i := 0; i < q; i++ {
			out = append(out, t.Instantiate(rng))
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
