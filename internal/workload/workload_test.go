package workload

import (
	"math/rand"
	"strings"
	"testing"

	"payless/internal/catalog"
	"payless/internal/market"
	"payless/internal/sqlparse"
	"payless/internal/storage"
	"payless/internal/value"
)

func TestDateSeq(t *testing.T) {
	got := DateSeq(20140628, 5)
	want := []int64{20140628, 20140629, 20140630, 20140701, 20140702}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DateSeq: %v, want %v", got, want)
		}
	}
}

func TestGenerateWHWShape(t *testing.T) {
	cfg := DefaultWHWConfig()
	w := GenerateWHW(cfg)
	if len(w.Countries) != cfg.Countries || w.Countries[0] != "United States" {
		t.Errorf("countries: %v", w.Countries)
	}
	if len(w.Dates) != cfg.Days {
		t.Errorf("dates: %d", len(w.Dates))
	}
	// Weather rows = stations x days.
	if len(w.WeatherRows) != len(w.StationRows)*cfg.Days {
		t.Errorf("weather rows %d != stations %d x days %d",
			len(w.WeatherRows), len(w.StationRows), cfg.Days)
	}
	if len(w.PollutionRows) != cfg.Zips || len(w.ZipMapRows) != cfg.Zips {
		t.Errorf("pollution/zipmap: %d/%d", len(w.PollutionRows), len(w.ZipMapRows))
	}
	// Seattle must exist with at least one US station.
	if !w.StationCities["United States"]["Seattle"] {
		t.Error("Seattle must have a US station")
	}
	// Deterministic for a fixed seed.
	w2 := GenerateWHW(cfg)
	if len(w2.StationRows) != len(w.StationRows) || !w2.StationRows[0].Equal(w.StationRows[0]) {
		t.Error("generation must be deterministic")
	}
	// Metadata consistency: every row satisfies its own table's domains.
	for _, r := range w.WeatherRows[:100] {
		a, _ := w.Weather.Attr("Country")
		if _, err := a.Coord(r[0]); err != nil {
			t.Fatalf("weather country outside domain: %v", err)
		}
	}
}

func TestWHWInstallAndCatalog(t *testing.T) {
	w := GenerateWHW(WHWConfig{Seed: 2, Countries: 3, StationsPerCountry: 4, CitiesPerCountry: 2, Days: 5, StartDate: 20140601, Zips: 10, MaxRank: 50})
	m := market.New()
	db := storage.NewDB()
	if err := w.Install(m, db, 100, 1); err != nil {
		t.Fatal(err)
	}
	tables := m.ExportCatalog()
	if len(tables) != 3 {
		t.Fatalf("market tables: %d", len(tables))
	}
	zt, ok := db.Lookup("ZipMap")
	if !ok || zt.Len() != 10 {
		t.Error("ZipMap not loaded locally")
	}
	if err := w.Install(m, db, 100, 1); err == nil {
		t.Error("double install should error")
	}
}

func TestWHWTemplatesParse(t *testing.T) {
	w := GenerateWHW(DefaultWHWConfig())
	rng := rand.New(rand.NewSource(5))
	for _, tpl := range w.Templates() {
		for i := 0; i < 20; i++ {
			sql := tpl.Instantiate(rng)
			if _, err := sqlparse.Parse(sql); err != nil {
				t.Fatalf("%s: %v\n%s", tpl.Name, err, sql)
			}
		}
	}
}

func TestMixShufflesAndCounts(t *testing.T) {
	w := GenerateWHW(DefaultWHWConfig())
	qs := Mix(w.Templates(), 4, 9)
	if len(qs) != 20 {
		t.Fatalf("mix size: %d", len(qs))
	}
	// Same seed is deterministic.
	qs2 := Mix(w.Templates(), 4, 9)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("Mix must be deterministic per seed")
		}
	}
}

func TestZipfDistribution(t *testing.T) {
	zf := NewZipf(100, 1)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 101)
	for i := 0; i < 20000; i++ {
		k := zf.Draw(rng)
		if k < 1 || k > 100 {
			t.Fatalf("draw out of range: %d", k)
		}
		counts[k]++
	}
	// Zipf(1): P(1) ~ 1/H(100) ≈ 0.19; rank 1 must dominate rank 50 hugely.
	if counts[1] < 5*counts[50] {
		t.Errorf("skew too weak: c1=%d c50=%d", counts[1], counts[50])
	}
	// Uniform case.
	uz := NewZipf(100, 0)
	uc := make([]int, 101)
	for i := 0; i < 20000; i++ {
		uc[uz.Draw(rng)]++
	}
	if uc[1] > 3*uc[50]+60 {
		t.Errorf("z=0 should be near uniform: c1=%d c50=%d", uc[1], uc[50])
	}
}

func TestGenerateTPCHShape(t *testing.T) {
	cfg := TPCHConfig{Seed: 3, ScaleFactor: 0.1}
	d := GenerateTPCH(cfg)
	if len(d.CustomerRows) != 100 || len(d.OrdersRows) != 800 || len(d.LineitemRows) != 3000 {
		t.Errorf("row counts: c=%d o=%d l=%d", len(d.CustomerRows), len(d.OrdersRows), len(d.LineitemRows))
	}
	if len(d.NationRows) != 25 || len(d.RegionRows) != 5 {
		t.Errorf("local rows: n=%d r=%d", len(d.NationRows), len(d.RegionRows))
	}
	if !d.Nation.Local || !d.Region.Local || d.Lineitem.Local {
		t.Error("locality flags")
	}
	if d.MarketRowCount() != 100+800+3000+120+8+480 {
		t.Errorf("market row count: %d", d.MarketRowCount())
	}
	// Every lineitem references an existing order and respects domains.
	no := int64(len(d.OrdersRows))
	for _, r := range d.LineitemRows {
		if r[0].I < 1 || r[0].I > no {
			t.Fatalf("lineitem orderkey out of range: %v", r[0])
		}
		if r[5].I < 0 || r[5].I > 10 {
			t.Fatalf("discount out of range: %v", r[5])
		}
	}
	// Scale factor 2 doubles rows.
	d2 := GenerateTPCH(TPCHConfig{Seed: 3, ScaleFactor: 0.2})
	if len(d2.LineitemRows) != 2*len(d.LineitemRows) {
		t.Errorf("scaling: %d vs %d", len(d2.LineitemRows), len(d.LineitemRows))
	}
}

func TestTPCHSkewConcentrates(t *testing.T) {
	flat := GenerateTPCH(TPCHConfig{Seed: 4, ScaleFactor: 0.1})
	skew := GenerateTPCH(TPCHConfig{Seed: 4, ScaleFactor: 0.1, Zipf: 1})
	count1 := func(d *TPCH) int {
		n := 0
		for _, r := range d.OrdersRows {
			if r[1].I == 1 { // CustKey 1
				n++
			}
		}
		return n
	}
	if count1(skew) <= 2*count1(flat) {
		t.Errorf("skewed CustKey=1 frequency %d should far exceed uniform %d", count1(skew), count1(flat))
	}
}

func TestTPCHInstallAndTemplates(t *testing.T) {
	d := GenerateTPCH(TPCHConfig{Seed: 5, ScaleFactor: 0.05})
	m := market.New()
	db := storage.NewDB()
	if err := d.Install(m, db, 100, 1); err != nil {
		t.Fatal(err)
	}
	tables := m.ExportCatalog()
	if len(tables) != 6 {
		t.Fatalf("market tables: %d", len(tables))
	}
	for _, tb := range tables {
		if tb.Dataset != "TPCH" {
			t.Errorf("dataset: %s", tb.Dataset)
		}
	}
	if _, ok := db.Lookup("Nation"); !ok {
		t.Error("Nation must be local")
	}
	rng := rand.New(rand.NewSource(6))
	for _, tpl := range d.Templates() {
		for i := 0; i < 10; i++ {
			sql := tpl.Instantiate(rng)
			q, err := sqlparse.Parse(sql)
			if err != nil {
				t.Fatalf("%s: %v\n%s", tpl.Name, err, sql)
			}
			// Referenced tables must exist in catalog metadata.
			for _, ref := range q.From {
				known := false
				for _, mt := range append(d.MarketTables(), d.Nation, d.Region) {
					if strings.EqualFold(mt.Name, ref.Name) {
						known = true
					}
				}
				if !known {
					t.Fatalf("%s references unknown table %s", tpl.Name, ref.Name)
				}
			}
		}
	}
}

func TestCatalogRegistrationOfAllTables(t *testing.T) {
	d := GenerateTPCH(TPCHConfig{Seed: 7, ScaleFactor: 0.05})
	cat := catalog.New()
	for _, tb := range append(d.MarketTables(), d.Nation, d.Region) {
		if err := cat.Register(tb); err != nil {
			t.Fatalf("register %s: %v", tb.Name, err)
		}
	}
	w := GenerateWHW(DefaultWHWConfig())
	cat2 := catalog.New()
	for _, tb := range []*catalog.Table{w.Station, w.Weather, w.Pollution, w.ZipMap} {
		if err := cat2.Register(tb); err != nil {
			t.Fatalf("register %s: %v", tb.Name, err)
		}
	}
}

// TestTemplatesProduceValidInstances enforces the paper's validity rule
// (§5: "A query instance is valid if it returns non-empty results") by
// brute-forcing each WHW instance against the generated rows.
func TestTemplatesProduceValidInstances(t *testing.T) {
	w := GenerateWHW(WHWConfig{
		Seed: 13, Countries: 5, StationsPerCountry: 12, CitiesPerCountry: 4,
		Days: 25, StartDate: 20140601, Zips: 120, MaxRank: 100,
	})
	rng := rand.New(rand.NewSource(41))

	stationsByCountry := map[string][]int64{}
	cityOfStation := map[int64]string{}
	for _, r := range w.StationRows {
		stationsByCountry[r[0].S] = append(stationsByCountry[r[0].S], r[1].I)
		cityOfStation[r[1].I] = r[2].S
	}

	for _, tpl := range w.Templates() {
		for i := 0; i < 10; i++ {
			sql := tpl.Instantiate(rng)
			q, err := sqlparse.Parse(sql)
			if err != nil {
				t.Fatalf("%s: %v", tpl.Name, err)
			}
			country, lo, hi, zip := extractParams(q)
			nonEmpty := false
			switch tpl.Name {
			case "Q1", "Q3":
				nonEmpty = len(stationsByCountry[country]) > 0 && lo <= hi
			case "Q2":
				for _, r := range w.PollutionRows {
					if r[1].I >= lo && r[1].I <= hi {
						nonEmpty = true
						break
					}
				}
			case "Q4":
				city := w.CityByZip[zip]
				for _, sid := range stationsByCountry[country] {
					if cityOfStation[sid] == city {
						nonEmpty = true
						break
					}
				}
			case "Q5":
				nonEmpty = true // rank span is wide by construction; spot-check below
			}
			if !nonEmpty {
				t.Errorf("%s instance %d is empty by construction:\n%s", tpl.Name, i, sql)
			}
		}
	}
}

// extractParams pulls the country/zip equality and the first numeric range
// out of a parsed template instance.
func extractParams(q *sqlparse.Query) (country string, lo, hi int64, zip string) {
	lo, hi = 1<<62, -(1 << 62)
	for _, c := range q.Where {
		if c.IsJoin() || c.RightVal == nil {
			continue
		}
		switch {
		case c.Op == sqlparse.OpGe:
			if c.RightVal.I < lo {
				lo = c.RightVal.I
			}
		case c.Op == sqlparse.OpLe:
			if c.RightVal.I > hi {
				hi = c.RightVal.I
			}
		case c.Op == sqlparse.OpEq && c.RightVal.K == value.String:
			if c.Left.Column == "ZipCode" {
				zip = c.RightVal.S
			} else {
				country = c.RightVal.S
			}
		}
	}
	return
}
