package workload

import (
	"fmt"
	"math/rand"

	"payless/internal/catalog"
	"payless/internal/market"
	"payless/internal/storage"
	"payless/internal/value"
)

// TPCHConfig scales the TPC-H-shaped data. ScaleFactor maps to the paper's
// "data size D": D=1 is the harness's stand-in for the paper's 1 GB, with
// row counts reduced proportionally (documented in DESIGN.md). Zipf > 0
// skews foreign keys and dates, matching the TPC-D skew generator [19].
type TPCHConfig struct {
	Seed        int64
	ScaleFactor float64
	Zipf        float64
}

// DefaultTPCHConfig returns the harness's base scale.
func DefaultTPCHConfig() TPCHConfig {
	return TPCHConfig{Seed: 1, ScaleFactor: 1.0}
}

// Base row counts at ScaleFactor 1 (the "1G" stand-in).
const (
	baseCustomers = 1000
	baseOrders    = 8000
	baseLineitem  = 30000
	baseParts     = 1200
	baseSuppliers = 80
	basePartSupp  = 4800
	// dateDays is the order-date domain [1, dateDays] in day numbers.
	dateDays = 2400
	// shipLag bounds ShipDate - OrderDate.
	shipLag = 120
)

// Categorical domains.
var (
	mktSegments     = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	orderPriorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	regionNames     = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	partTypes       = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
)

// TPCH holds the generated tables plus catalog metadata. Nation and Region
// are local tables (as in the paper's experiments); the rest live in the
// market's "TPCH" dataset.
type TPCH struct {
	Config TPCHConfig

	Customer, Orders, Lineitem, Part, Supplier, PartSupp *catalog.Table
	Nation, Region                                       *catalog.Table

	CustomerRows, OrdersRows, LineitemRows, PartRows,
	SupplierRows, PartSuppRows, NationRows, RegionRows []value.Row
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	if n < 1 {
		n = 1
	}
	return n
}

// drawKey samples a key in [1, n]: uniform or Zipf-skewed.
func drawKey(rng *rand.Rand, zf *Zipf, n int) int64 {
	if zf != nil {
		return int64(zf.Draw(rng))
	}
	return rng.Int63n(int64(n)) + 1
}

// GenerateTPCH builds the dataset.
func GenerateTPCH(cfg TPCHConfig) *TPCH {
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &TPCH{Config: cfg}
	nc := scaled(baseCustomers, cfg.ScaleFactor)
	no := scaled(baseOrders, cfg.ScaleFactor)
	nl := scaled(baseLineitem, cfg.ScaleFactor)
	np := scaled(baseParts, cfg.ScaleFactor)
	ns := scaled(baseSuppliers, cfg.ScaleFactor)
	nps := scaled(basePartSupp, cfg.ScaleFactor)

	var custZ, partZ, suppZ, dateZ *Zipf
	if cfg.Zipf > 0 {
		custZ = NewZipf(nc, cfg.Zipf)
		partZ = NewZipf(np, cfg.Zipf)
		suppZ = NewZipf(ns, cfg.Zipf)
		dateZ = NewZipf(dateDays, cfg.Zipf)
	}

	// Region + Nation (local).
	for i, name := range regionNames {
		t.RegionRows = append(t.RegionRows, value.Row{value.NewInt(int64(i + 1)), value.NewString(name)})
	}
	nationNames := make([]string, 25)
	for i := 0; i < 25; i++ {
		nationNames[i] = fmt.Sprintf("NATION_%02d", i+1)
		t.NationRows = append(t.NationRows, value.Row{
			value.NewInt(int64(i + 1)), value.NewString(nationNames[i]), value.NewInt(int64(i%5 + 1)),
		})
	}

	// Customer.
	for i := 1; i <= nc; i++ {
		t.CustomerRows = append(t.CustomerRows, value.Row{
			value.NewInt(int64(i)),
			value.NewInt(rng.Int63n(25) + 1),
			value.NewString(mktSegments[rng.Intn(len(mktSegments))]),
			value.NewFloat(rng.Float64() * 10000),
		})
	}

	// Orders. Order keys are dense 1..no so lineitems can reference them.
	orderDate := make([]int64, no+1)
	for i := 1; i <= no; i++ {
		d := drawKey(rng, dateZ, dateDays)
		orderDate[i] = d
		t.OrdersRows = append(t.OrdersRows, value.Row{
			value.NewInt(int64(i)),
			value.NewInt(drawKey(rng, custZ, nc)),
			value.NewInt(d),
			value.NewString(orderPriorities[rng.Intn(len(orderPriorities))]),
			value.NewFloat(1000 + rng.Float64()*100000),
		})
	}

	// Lineitem.
	for i := 1; i <= nl; i++ {
		ok := rng.Int63n(int64(no)) + 1
		ship := orderDate[ok] + rng.Int63n(shipLag) + 1
		if ship > dateDays+shipLag {
			ship = dateDays + shipLag
		}
		t.LineitemRows = append(t.LineitemRows, value.Row{
			value.NewInt(ok),
			value.NewInt(drawKey(rng, partZ, np)),
			value.NewInt(drawKey(rng, suppZ, ns)),
			value.NewInt(ship),
			value.NewInt(rng.Int63n(50) + 1),
			value.NewInt(rng.Int63n(11)), // discount in percent 0..10
			value.NewFloat(100 + rng.Float64()*100000),
		})
	}

	// Part.
	for i := 1; i <= np; i++ {
		t.PartRows = append(t.PartRows, value.Row{
			value.NewInt(int64(i)),
			value.NewString(partTypes[rng.Intn(len(partTypes))]),
			value.NewInt(rng.Int63n(50) + 1),
			value.NewFloat(900 + rng.Float64()*1000),
		})
	}

	// Supplier.
	for i := 1; i <= ns; i++ {
		t.SupplierRows = append(t.SupplierRows, value.Row{
			value.NewInt(int64(i)),
			value.NewInt(rng.Int63n(25) + 1),
			value.NewFloat(rng.Float64() * 10000),
		})
	}

	// PartSupp.
	seen := make(map[[2]int64]bool)
	for len(t.PartSuppRows) < nps {
		pk := drawKey(rng, partZ, np)
		sk := drawKey(rng, suppZ, ns)
		key := [2]int64{pk, sk}
		if seen[key] {
			continue
		}
		seen[key] = true
		t.PartSuppRows = append(t.PartSuppRows, value.Row{
			value.NewInt(pk), value.NewInt(sk),
			value.NewInt(rng.Int63n(10000) + 1),
			value.NewFloat(rng.Float64() * 1000),
		})
	}

	t.buildMeta(nc, no, np, ns, nationNames)
	return t
}

func (t *TPCH) buildMeta(nc, no, np, ns int, nationNames []string) {
	numAttr := func(name string, min, max int64) catalog.Attribute {
		return catalog.Attribute{Name: name, Type: value.Int, Binding: catalog.Free, Class: catalog.NumericAttr, Min: min, Max: max}
	}
	catAttr := func(name string, dom []string) catalog.Attribute {
		return catalog.Attribute{Name: name, Type: value.String, Binding: catalog.Free, Class: catalog.CategoricalAttr, Domain: strDomain(dom)}
	}
	outAttr := func(name string) catalog.Attribute {
		return catalog.Attribute{Name: name, Type: value.Float, Binding: catalog.Output}
	}
	col := func(name string, k value.Kind) value.Column { return value.Column{Name: name, Type: k} }

	t.Region = &catalog.Table{
		Name: "Region", Local: true,
		Schema: value.Schema{col("RegionKey", value.Int), col("RName", value.String)},
		Attrs: []catalog.Attribute{
			numAttr("RegionKey", 1, 5),
			catAttr("RName", regionNames),
		},
		Cardinality: int64(len(t.RegionRows)),
	}
	t.Nation = &catalog.Table{
		Name: "Nation", Local: true,
		Schema: value.Schema{col("NationKey", value.Int), col("NName", value.String), col("RegionKey", value.Int)},
		Attrs: []catalog.Attribute{
			numAttr("NationKey", 1, 25),
			catAttr("NName", nationNames),
			numAttr("RegionKey", 1, 5),
		},
		Cardinality: int64(len(t.NationRows)),
	}
	t.Customer = &catalog.Table{
		Name:   "Customer",
		Schema: value.Schema{col("CustKey", value.Int), col("NationKey", value.Int), col("MktSegment", value.String), col("AcctBal", value.Float)},
		Attrs: []catalog.Attribute{
			numAttr("CustKey", 1, int64(nc)),
			numAttr("NationKey", 1, 25),
			catAttr("MktSegment", mktSegments),
			outAttr("AcctBal"),
		},
	}
	t.Orders = &catalog.Table{
		Name:   "Orders",
		Schema: value.Schema{col("OrderKey", value.Int), col("CustKey", value.Int), col("OrderDate", value.Int), col("OrderPriority", value.String), col("TotalPrice", value.Float)},
		Attrs: []catalog.Attribute{
			numAttr("OrderKey", 1, int64(no)),
			numAttr("CustKey", 1, int64(nc)),
			numAttr("OrderDate", 1, dateDays),
			catAttr("OrderPriority", orderPriorities),
			outAttr("TotalPrice"),
		},
	}
	t.Lineitem = &catalog.Table{
		Name:   "Lineitem",
		Schema: value.Schema{col("OrderKey", value.Int), col("PartKey", value.Int), col("SuppKey", value.Int), col("ShipDate", value.Int), col("Quantity", value.Int), col("Discount", value.Int), col("ExtendedPrice", value.Float)},
		Attrs: []catalog.Attribute{
			numAttr("OrderKey", 1, int64(no)),
			numAttr("PartKey", 1, int64(np)),
			numAttr("SuppKey", 1, int64(ns)),
			numAttr("ShipDate", 1, dateDays+shipLag),
			numAttr("Quantity", 1, 50),
			numAttr("Discount", 0, 10),
			outAttr("ExtendedPrice"),
		},
	}
	t.Part = &catalog.Table{
		Name:   "Part",
		Schema: value.Schema{col("PartKey", value.Int), col("PType", value.String), col("Size", value.Int), col("RetailPrice", value.Float)},
		Attrs: []catalog.Attribute{
			numAttr("PartKey", 1, int64(np)),
			catAttr("PType", partTypes),
			numAttr("Size", 1, 50),
			outAttr("RetailPrice"),
		},
	}
	t.Supplier = &catalog.Table{
		Name:   "Supplier",
		Schema: value.Schema{col("SuppKey", value.Int), col("NationKey", value.Int), col("SAcctBal", value.Float)},
		Attrs: []catalog.Attribute{
			numAttr("SuppKey", 1, int64(ns)),
			numAttr("NationKey", 1, 25),
			outAttr("SAcctBal"),
		},
	}
	t.PartSupp = &catalog.Table{
		Name:   "PartSupp",
		Schema: value.Schema{col("PartKey", value.Int), col("SuppKey", value.Int), col("AvailQty", value.Int), col("SupplyCost", value.Float)},
		Attrs: []catalog.Attribute{
			numAttr("PartKey", 1, int64(np)),
			numAttr("SuppKey", 1, int64(ns)),
			numAttr("AvailQty", 1, 10000),
			outAttr("SupplyCost"),
		},
	}
}

// MarketTables lists the tables sold in the market.
func (t *TPCH) MarketTables() []*catalog.Table {
	return []*catalog.Table{t.Customer, t.Orders, t.Lineitem, t.Part, t.Supplier, t.PartSupp}
}

// MarketRowCount is the total number of rows behind the market paywall —
// the "Download All" denominator.
func (t *TPCH) MarketRowCount() int {
	return len(t.CustomerRows) + len(t.OrdersRows) + len(t.LineitemRows) +
		len(t.PartRows) + len(t.SupplierRows) + len(t.PartSuppRows)
}

// Install publishes the market tables in a "TPCH" dataset and loads Nation
// and Region into the local DBMS.
func (t *TPCH) Install(m *market.Market, db *storage.DB, tuplesPerTransaction int, price float64) error {
	ds, err := m.AddDataset("TPCH", tuplesPerTransaction, price)
	if err != nil {
		return err
	}
	pairs := []struct {
		meta *catalog.Table
		rows []value.Row
	}{
		{t.Customer, t.CustomerRows}, {t.Orders, t.OrdersRows}, {t.Lineitem, t.LineitemRows},
		{t.Part, t.PartRows}, {t.Supplier, t.SupplierRows}, {t.PartSupp, t.PartSuppRows},
	}
	for _, p := range pairs {
		if err := ds.AddTable(p.meta, p.rows); err != nil {
			return err
		}
	}
	for _, local := range []struct {
		meta *catalog.Table
		rows []value.Row
	}{{t.Nation, t.NationRows}, {t.Region, t.RegionRows}} {
		tbl, err := db.Ensure(local.meta.Name, local.meta.Schema)
		if err != nil {
			return err
		}
		if _, err := tbl.Insert(local.rows); err != nil {
			return err
		}
	}
	return nil
}

// Templates returns range-parameterised TPC-H-shaped query templates. The
// ranges are sizable ("TPC-H queries scan a large portion of data", §5), so
// a few dozen instances eventually cover the whole dataset.
func (t *TPCH) Templates() []Template {
	shipMax := int64(dateDays + shipLag)
	return []Template{
		{
			Name: "T1-pricing", // Q6-shaped
			Instantiate: func(rng *rand.Rand) string {
				span := shipMax/8 + rng.Int63n(shipMax/8)
				lo := rng.Int63n(shipMax-span) + 1
				dlo := rng.Int63n(5)
				return fmt.Sprintf(
					"SELECT COUNT(*), SUM(ExtendedPrice) FROM Lineitem "+
						"WHERE ShipDate >= %d AND ShipDate <= %d AND Discount >= %d AND Discount <= %d AND Quantity <= %d",
					lo, lo+span, dlo, dlo+3, 25+rng.Int63n(25))
			},
		},
		{
			Name: "T2-shipping", // Q3-shaped
			Instantiate: func(rng *rand.Rand) string {
				seg := mktSegments[rng.Intn(len(mktSegments))]
				cut := dateDays/3 + rng.Int63n(dateDays/3)
				return fmt.Sprintf(
					"SELECT COUNT(*), SUM(ExtendedPrice) FROM Customer, Orders, Lineitem "+
						"WHERE Customer.MktSegment = '%s' AND Customer.CustKey = Orders.CustKey "+
						"AND Lineitem.OrderKey = Orders.OrderKey AND Orders.OrderDate <= %d AND Lineitem.ShipDate >= %d",
					seg, cut, cut)
			},
		},
		{
			Name: "T3-local-nation", // Q5-shaped with local Nation/Region
			Instantiate: func(rng *rand.Rand) string {
				region := regionNames[rng.Intn(len(regionNames))]
				span := int64(dateDays / 4)
				lo := rng.Int63n(dateDays-span) + 1
				return fmt.Sprintf(
					"SELECT NName, COUNT(*) FROM Region, Nation, Customer, Orders "+
						"WHERE RName = '%s' AND Region.RegionKey = Nation.RegionKey "+
						"AND Nation.NationKey = Customer.NationKey AND Customer.CustKey = Orders.CustKey "+
						"AND Orders.OrderDate >= %d AND Orders.OrderDate <= %d GROUP BY NName",
					region, lo, lo+span)
			},
		},
		{
			Name: "T4-parts", // partsupp join
			Instantiate: func(rng *rand.Rand) string {
				lo := rng.Int63n(40) + 1
				return fmt.Sprintf(
					"SELECT COUNT(*) FROM Part, PartSupp, Supplier "+
						"WHERE Part.Size >= %d AND Part.Size <= %d AND Part.PartKey = PartSupp.PartKey "+
						"AND PartSupp.SuppKey = Supplier.SuppKey",
					lo, lo+10)
			},
		},
		{
			Name: "T5-returns", // Q10-shaped
			Instantiate: func(rng *rand.Rand) string {
				span := int64(dateDays / 6)
				lo := rng.Int63n(dateDays-span) + 1
				return fmt.Sprintf(
					"SELECT NName, COUNT(*) FROM Customer, Orders, Nation "+
						"WHERE Customer.CustKey = Orders.CustKey AND Customer.NationKey = Nation.NationKey "+
						"AND Orders.OrderDate >= %d AND Orders.OrderDate <= %d GROUP BY NName",
					lo, lo+span)
			},
		},
	}
}
