package obs

import "context"

type callKey struct{}

// ContextWithCall attaches a call record to ctx so transport layers below
// the engine (the HTTP connector's retry loop) can annotate the in-flight
// call without threading trace plumbing through every signature.
func ContextWithCall(ctx context.Context, rec *CallRecord) context.Context {
	if rec == nil {
		return ctx
	}
	return context.WithValue(ctx, callKey{}, rec)
}

// CallFromContext returns the call record attached to ctx, or nil.
func CallFromContext(ctx context.Context) *CallRecord {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(callKey{}).(*CallRecord)
	return rec
}

// AddRetry counts one extra transport attempt. Safe on a nil receiver; a
// call record is only ever touched by the goroutine running its call.
func (r *CallRecord) AddRetry() {
	if r == nil {
		return
	}
	r.Retries++
}

// SetFederation annotates the call with the federation layer's routing
// outcome: which endpoint served it, how many endpoints hard-failed first,
// and whether a hedge was raced (and won). Safe on a nil receiver.
func (r *CallRecord) SetFederation(endpoint string, failovers int, hedged, hedgeWon bool) {
	if r == nil {
		return
	}
	r.Endpoint = endpoint
	r.Failovers = failovers
	r.Hedged = hedged
	r.HedgeWon = hedgeWon
}
