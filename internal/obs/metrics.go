package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// latencyBuckets are the histogram upper bounds. Market round-trips live in
// the 1ms–10s range; everything slower lands in +Inf.
var latencyBuckets = []time.Duration{
	time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	(5 * time.Second) / 2,
	5 * time.Second,
	10 * time.Second,
}

// histogram is a fixed-bucket latency histogram. Counts are per-bucket
// (non-cumulative, one overflow bucket at the end); snapshots and the
// Prometheus rendering cumulate.
type histogram struct {
	counts []int64
	count  int64
	sum    time.Duration
}

func (h *histogram) observe(d time.Duration) {
	if h.counts == nil {
		h.counts = make([]int64, len(latencyBuckets)+1)
	}
	i := sort.Search(len(latencyBuckets), func(i int) bool { return d <= latencyBuckets[i] })
	h.counts[i]++
	h.count++
	h.sum += d
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count, Sum: h.sum}
	var cum int64
	for i, le := range latencyBuckets {
		if h.counts != nil {
			cum += h.counts[i]
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: cum})
	}
	return s
}

// Bucket is one cumulative histogram bucket: Count observations ≤ Le.
type Bucket struct {
	Le    time.Duration
	Count int64
}

// HistogramSnapshot is a point-in-time copy of a latency histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets []Bucket
}

// Quantile returns an upper bound on the q-quantile latency (q in [0,1]),
// resolved to bucket boundaries; 0 when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	for _, b := range s.Buckets {
		if b.Count >= rank {
			return b.Le
		}
	}
	// Beyond the last bound: report the mean of the overflow as a stand-in.
	return s.Sum / time.Duration(s.Count)
}

// Metrics accumulates process-wide counters and latency histograms. One
// instance serves a Client (buyer side) or a Market (seller side); unused
// families simply stay zero. Safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	queries     int64
	queryErrors int64

	calls        int64
	records      int64
	transactions int64
	price        float64
	retries      int64

	storeHits    int64
	storeHitRows int64

	storeLookups      int64
	storeLookupMicros int64
	storePrunedBoxes  int64
	storeFastPath     int64
	storeDropped      int64
	storeCompacted    int64

	replayedCalls int64

	breakerOpens         int64
	breakerShortCircuits int64
	breakerProbes        int64

	failedQuerySpendTransactions int64
	failedQuerySpendPrice        float64

	walAppends         int64
	walAppendBytes     int64
	walAppendMicros    int64
	walSyncedAppends   int64
	walReplays         int64
	walReplayedRecords int64
	walSkippedRecords  int64
	walTornTails       int64

	checkpoints        int64
	checkpointFailures int64
	checkpointBytes    int64
	checkpointMicros   int64

	auditDropped int64

	planCacheHits          int64
	planCacheMisses        int64
	planCacheInvalidations int64
	planCacheEvictions     int64
	plansCached            int64
	plansGreedy            int64
	plansDP                int64

	schedSingleflightHits        int64
	schedMergedCalls             int64
	schedMergedTransactionsSaved int64
	schedDelayedCalls            int64

	federationCalls     int64
	federationFailovers int64
	federationHedges    int64
	federationHedgeWins int64
	federationExhausted int64

	// Gauges (instantaneous levels, not cumulative): queries currently
	// executing and requests currently parked in an admission queue.
	inflight   int64
	queueDepth int64

	queryLatency    histogram
	callLatency     histogram
	optimizeLatency histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// ObserveQuery folds one finished query into the registry: its end-to-end
// and optimize latencies plus what it cost at the market.
func (m *Metrics) ObserveQuery(total, optimize time.Duration, calls, records, transactions int64, price float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queries++
	m.calls += calls
	m.records += records
	m.transactions += transactions
	m.price += price
	m.queryLatency.observe(total)
	m.optimizeLatency.observe(optimize)
}

// ObserveQueryError counts a failed query.
func (m *Metrics) ObserveQueryError() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queryErrors++
}

// ObserveTrace folds a finished trace's per-call detail into the registry:
// call latencies, retries and semantic-store reuse. Call/record/transaction
// totals are NOT added here — ObserveQuery already counted them from the
// query report — so observing both for the same query never double-counts.
func (m *Metrics) ObserveTrace(t *Trace) {
	if m == nil || t == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range t.Calls {
		m.callLatency.observe(c.Latency)
		m.retries += int64(c.Retries)
	}
	m.storeHits += int64(t.StoreHits)
	m.storeHitRows += t.StoreHitRows
}

// ObserveStoreLookup folds one semantic-store coverage lookup into the
// registry. Fed directly by the store (not via traces), so it counts every
// lookup whether or not the query was traced.
func (m *Metrics) ObserveStoreLookup(micros int64, pruned int, fastPath bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.storeLookups++
	m.storeLookupMicros += micros
	m.storePrunedBoxes += int64(pruned)
	if fastPath {
		m.storeFastPath++
	}
}

// ObserveStoreCompaction folds one Record's compaction outcome into the
// registry: whether the new entry was dropped as redundant, and how many
// stored entries it absorbed or merged away.
func (m *Metrics) ObserveStoreCompaction(dropped bool, absorbed, merged int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if dropped {
		m.storeDropped++
	}
	m.storeCompacted += int64(absorbed + merged)
}

// ObserveReplayedCall counts a call served from the replay ledger instead
// of being billed again — a retry whose first execution had already been
// charged (seller side).
func (m *Metrics) ObserveReplayedCall() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replayedCalls++
}

// ObserveBreakerOpen counts a circuit breaker tripping open for a dataset.
func (m *Metrics) ObserveBreakerOpen() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.breakerOpens++
}

// ObserveBreakerShortCircuit counts a market call refused locally because
// its dataset's breaker was open — money and latency not spent on a market
// that is known to be failing.
func (m *Metrics) ObserveBreakerShortCircuit() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.breakerShortCircuits++
}

// ObserveBreakerProbe counts a half-open probe call let through after a
// breaker's cooldown.
func (m *Metrics) ObserveBreakerProbe() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.breakerProbes++
}

// ObserveFederationCall counts a market call routed through the federation
// layer (before source selection).
func (m *Metrics) ObserveFederationCall() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.federationCalls++
}

// ObserveFederationFailover counts one failover: an endpoint's attempt
// hard-failed and the call moved on to the next-cheapest healthy endpoint.
func (m *Metrics) ObserveFederationFailover() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.federationFailovers++
}

// ObserveFederationHedge counts a hedge launched: the primary endpoint was
// slower than HedgeAfter, so a second endpoint was raced against it.
func (m *Metrics) ObserveFederationHedge() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.federationHedges++
}

// ObserveFederationHedgeWin counts a hedge whose secondary endpoint answered
// first (the primary was cancelled as the loser).
func (m *Metrics) ObserveFederationHedgeWin() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.federationHedgeWins++
}

// ObserveFederationExhausted counts calls that failed on every configured
// endpoint (all refused by breakers or all hard-failed).
func (m *Metrics) ObserveFederationExhausted() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.federationExhausted++
}

// AddInflight moves the in-flight-queries gauge by delta: +1 as a query is
// admitted, -1 as it settles. The overload-protection layers watch this
// level to tell "busy" from "drowning".
func (m *Metrics) AddInflight(delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inflight += delta
}

// AddQueueDepth moves the admission-queue-depth gauge by delta: +1 as a
// request starts waiting for an execution slot, -1 as it is admitted or
// shed. Fed by the daemon's load shedder.
func (m *Metrics) AddQueueDepth(delta int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueDepth += delta
}

// ObserveFailedQuerySpend folds the money a FAILED query still spent into
// the bill counters (its salvage: the rows are in the semantic store, so a
// retry will not re-buy them). Calls/records/transactions/price join the
// same cumulative families ObserveQuery feeds on success; the
// failed-query-specific transaction/price totals are additionally tracked
// so dashboards can see how much spend sits behind failures.
func (m *Metrics) ObserveFailedQuerySpend(calls, records, transactions int64, price float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls += calls
	m.records += records
	m.transactions += transactions
	m.price += price
	m.failedQuerySpendTransactions += transactions
	m.failedQuerySpendPrice += price
}

// ObserveWALAppend folds one write-ahead-log append into the registry:
// payload bytes, whether the append was fsynced before returning, and how
// long the append (including any fsync) took.
func (m *Metrics) ObserveWALAppend(bytes int, synced bool, micros int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.walAppends++
	m.walAppendBytes += int64(bytes)
	m.walAppendMicros += micros
	if synced {
		m.walSyncedAppends++
	}
}

// ObserveWALReplay folds one recovery replay into the registry: records
// applied, records skipped as already covered by the loaded snapshot, and
// whether a torn tail was truncated.
func (m *Metrics) ObserveWALReplay(replayed, skipped int, torn bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.walReplays++
	m.walReplayedRecords += int64(replayed)
	m.walSkippedRecords += int64(skipped)
	if torn {
		m.walTornTails++
	}
}

// ObserveCheckpoint folds one snapshot checkpoint into the registry. Failed
// checkpoints (ok=false) count separately; bytes/micros are then zero.
func (m *Metrics) ObserveCheckpoint(bytes, micros int64, ok bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !ok {
		m.checkpointFailures++
		return
	}
	m.checkpoints++
	m.checkpointBytes += bytes
	m.checkpointMicros += micros
}

// ObserveAuditDrop counts an audit record that could not be written to the
// audit sink. Auditing stays non-fatal; this is how the loss is seen.
func (m *Metrics) ObserveAuditDrop() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.auditDropped++
}

// ObservePlanCacheLookup folds one plan-template cache lookup into the
// registry: whether it hit, and whether it found-and-discarded a stale
// entry (an invalidation, which also counts as a miss).
func (m *Metrics) ObservePlanCacheLookup(hit, invalidated bool) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if hit {
		m.planCacheHits++
	} else {
		m.planCacheMisses++
	}
	if invalidated {
		m.planCacheInvalidations++
	}
}

// ObservePlanCacheEviction counts a cached skeleton displaced by capacity.
func (m *Metrics) ObservePlanCacheEviction() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.planCacheEvictions++
}

// ObservePlanner counts which planning strategy produced one query's plan
// ("cached", "greedy" or anything else, counted as dp).
func (m *Metrics) ObservePlanner(planner string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	switch planner {
	case "cached":
		m.plansCached++
	case "greedy":
		m.plansGreedy++
	default:
		m.plansDP++
	}
}

// ObserveSchedSingleflightHit counts a market call that joined an identical
// (or containing) in-flight call instead of going to the wire — one bill
// shared by several concurrent requesters.
func (m *Metrics) ObserveSchedSingleflightHit() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.schedSingleflightHits++
}

// ObserveSchedMerge counts one merged wire call the scheduler fused out of
// several cross-query remainder boxes, and how many transactions the merge
// saved versus billing the parts separately.
func (m *Metrics) ObserveSchedMerge(saved int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.schedMergedCalls++
	if saved > 0 {
		m.schedMergedTransactionsSaved += saved
	}
}

// ObserveSchedDelayedCall counts a sub-transaction-size fetch the scheduler
// parked in the coalesce window to accumulate merge candidates.
func (m *Metrics) ObserveSchedDelayedCall() {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.schedDelayedCalls++
}

// ObserveCall folds one served market call into the registry — the
// seller-side entry point used by Market.Execute.
func (m *Metrics) ObserveCall(latency time.Duration, records, transactions int64, price float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls++
	m.records += records
	m.transactions += transactions
	m.price += price
	m.callLatency.observe(latency)
}

// Snapshot is a point-in-time copy of every counter and histogram.
type Snapshot struct {
	// Queries and QueryErrors count finished and failed queries.
	Queries     int64
	QueryErrors int64
	// Calls/Records/Transactions/Price are the cumulative market bill.
	Calls        int64
	Records      int64
	Transactions int64
	Price        float64
	// Retries counts extra transport attempts across all calls.
	Retries int64
	// StoreHits counts plan accesses served entirely from the semantic
	// store; StoreHitRows the rows served locally instead of bought.
	StoreHits    int64
	StoreHitRows int64
	// StoreLookups counts indexed coverage lookups, StoreLookupMicros their
	// cumulative duration, StorePrunedBoxes the stored boxes index pruning
	// skipped, and StoreFastPathHits lookups answered by a single containing
	// box. StoreDroppedEntries and StoreCompactedEntries count compaction:
	// new entries dropped as redundant and stored entries absorbed/merged.
	StoreLookups          int64
	StoreLookupMicros     int64
	StorePrunedBoxes      int64
	StoreFastPathHits     int64
	StoreDroppedEntries   int64
	StoreCompactedEntries int64

	// ReplayedCalls counts retried calls the replay ledger served without
	// re-billing (seller side).
	ReplayedCalls int64
	// BreakerOpens/BreakerShortCircuits/BreakerProbes count circuit-breaker
	// activity in the engine's fetch path (buyer side): breakers tripping
	// open, calls refused while open, and half-open probes let through.
	BreakerOpens         int64
	BreakerShortCircuits int64
	BreakerProbes        int64
	// FailedQuerySpendTransactions/Price total the spend of queries that
	// ultimately failed — money salvaged into the semantic store.
	FailedQuerySpendTransactions int64
	FailedQuerySpendPrice        float64

	// WALAppends/WALAppendBytes/WALAppendMicros count write-ahead-log
	// appends in durable mode; WALSyncedAppends those fsynced before
	// Record returned. WALReplays counts recoveries, WALReplayedRecords
	// and WALSkippedRecords their applied/already-covered frames, and
	// WALTornTails recoveries that truncated a torn log tail.
	WALAppends         int64
	WALAppendBytes     int64
	WALAppendMicros    int64
	WALSyncedAppends   int64
	WALReplays         int64
	WALReplayedRecords int64
	WALSkippedRecords  int64
	WALTornTails       int64
	// Checkpoints/CheckpointBytes/CheckpointMicros count successful
	// snapshot checkpoints; CheckpointFailures the attempts that failed
	// (and left the log intact).
	Checkpoints        int64
	CheckpointFailures int64
	CheckpointBytes    int64
	CheckpointMicros   int64
	// AuditDropped counts audit records lost to sink write failures.
	AuditDropped int64

	// PlanCacheHits/Misses count plan-template cache lookups; Invalidations
	// entries discarded because a coverage epoch or the stats version moved;
	// Evictions entries displaced by the LRU capacity. PlansCached/Greedy/DP
	// count queries by the planning strategy that produced their plan.
	PlanCacheHits          int64
	PlanCacheMisses        int64
	PlanCacheInvalidations int64
	PlanCacheEvictions     int64
	PlansCached            int64
	PlansGreedy            int64
	PlansDP                int64

	// SchedSingleflightHits counts calls served by joining an identical
	// in-flight call; SchedMergedCalls wire calls fused out of several
	// cross-query boxes; SchedMergedTransactionsSaved the transactions the
	// merges saved versus billing the parts; SchedDelayedCalls the fetches
	// parked in the coalesce window.
	SchedSingleflightHits        int64
	SchedMergedCalls             int64
	SchedMergedTransactionsSaved int64
	SchedDelayedCalls            int64

	// FederationCalls counts market calls routed through the federation
	// layer; FederationFailovers endpoint attempts that hard-failed and
	// moved the call to the next-cheapest healthy endpoint;
	// FederationHedges hedge attempts launched after HedgeAfter;
	// FederationHedgeWins hedges whose secondary answered first; and
	// FederationExhausted calls that failed on every configured endpoint.
	FederationCalls     int64
	FederationFailovers int64
	FederationHedges    int64
	FederationHedgeWins int64
	FederationExhausted int64

	// InflightQueries and QueueDepth are gauges: queries currently executing
	// and requests currently parked waiting for an execution slot.
	InflightQueries int64
	QueueDepth      int64

	QueryLatency    HistogramSnapshot
	CallLatency     HistogramSnapshot
	OptimizeLatency HistogramSnapshot
}

// Snapshot returns a consistent copy of the registry.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		Queries:               m.queries,
		QueryErrors:           m.queryErrors,
		Calls:                 m.calls,
		Records:               m.records,
		Transactions:          m.transactions,
		Price:                 m.price,
		Retries:               m.retries,
		StoreHits:             m.storeHits,
		StoreHitRows:          m.storeHitRows,
		StoreLookups:          m.storeLookups,
		StoreLookupMicros:     m.storeLookupMicros,
		StorePrunedBoxes:      m.storePrunedBoxes,
		StoreFastPathHits:     m.storeFastPath,
		StoreDroppedEntries:   m.storeDropped,
		StoreCompactedEntries: m.storeCompacted,

		ReplayedCalls:                m.replayedCalls,
		BreakerOpens:                 m.breakerOpens,
		BreakerShortCircuits:         m.breakerShortCircuits,
		BreakerProbes:                m.breakerProbes,
		FailedQuerySpendTransactions: m.failedQuerySpendTransactions,
		FailedQuerySpendPrice:        m.failedQuerySpendPrice,

		WALAppends:         m.walAppends,
		WALAppendBytes:     m.walAppendBytes,
		WALAppendMicros:    m.walAppendMicros,
		WALSyncedAppends:   m.walSyncedAppends,
		WALReplays:         m.walReplays,
		WALReplayedRecords: m.walReplayedRecords,
		WALSkippedRecords:  m.walSkippedRecords,
		WALTornTails:       m.walTornTails,
		Checkpoints:        m.checkpoints,
		CheckpointFailures: m.checkpointFailures,
		CheckpointBytes:    m.checkpointBytes,
		CheckpointMicros:   m.checkpointMicros,
		AuditDropped:       m.auditDropped,

		PlanCacheHits:          m.planCacheHits,
		PlanCacheMisses:        m.planCacheMisses,
		PlanCacheInvalidations: m.planCacheInvalidations,
		PlanCacheEvictions:     m.planCacheEvictions,
		PlansCached:            m.plansCached,
		PlansGreedy:            m.plansGreedy,
		PlansDP:                m.plansDP,

		SchedSingleflightHits:        m.schedSingleflightHits,
		SchedMergedCalls:             m.schedMergedCalls,
		SchedMergedTransactionsSaved: m.schedMergedTransactionsSaved,
		SchedDelayedCalls:            m.schedDelayedCalls,

		FederationCalls:     m.federationCalls,
		FederationFailovers: m.federationFailovers,
		FederationHedges:    m.federationHedges,
		FederationHedgeWins: m.federationHedgeWins,
		FederationExhausted: m.federationExhausted,

		InflightQueries: m.inflight,
		QueueDepth:      m.queueDepth,

		QueryLatency:    m.queryLatency.snapshot(),
		CallLatency:     m.callLatency.snapshot(),
		OptimizeLatency: m.optimizeLatency.snapshot(),
	}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format. prefix namespaces the metric families ("payless" on the buyer
// side, "market" on the seller side).
func (m *Metrics) WritePrometheus(w io.Writer, prefix string) {
	s := m.Snapshot()
	counter := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n", prefix, name, help, prefix, name)
		switch n := v.(type) {
		case int64:
			fmt.Fprintf(w, "%s_%s %d\n", prefix, name, n)
		case float64:
			fmt.Fprintf(w, "%s_%s %g\n", prefix, name, n)
		}
	}
	counter("queries_total", "Queries executed.", s.Queries)
	counter("query_errors_total", "Queries that failed.", s.QueryErrors)
	counter("calls_total", "RESTful market calls.", s.Calls)
	counter("records_total", "Records returned by market calls.", s.Records)
	counter("transactions_total", "Transactions billed (ceil(records/t) per call).", s.Transactions)
	counter("price_total", "Money billed across all calls.", s.Price)
	counter("call_retries_total", "Extra transport attempts beyond the first.", s.Retries)
	counter("store_hits_total", "Plan accesses served entirely from the semantic store.", s.StoreHits)
	counter("store_hit_rows_total", "Rows served from the semantic store instead of bought.", s.StoreHitRows)
	counter("store_lookups_total", "Indexed semantic-store coverage lookups.", s.StoreLookups)
	counter("store_lookup_micros_total", "Cumulative coverage-lookup wall-clock microseconds.", s.StoreLookupMicros)
	counter("store_pruned_boxes_total", "Stored boxes skipped by index pruning before subtraction.", s.StorePrunedBoxes)
	counter("store_fastpath_total", "Coverage lookups answered by a single containing box.", s.StoreFastPathHits)
	counter("store_dropped_entries_total", "New coverage entries dropped as redundant on Record.", s.StoreDroppedEntries)
	counter("store_compacted_entries_total", "Stored coverage entries absorbed or merged by compaction.", s.StoreCompactedEntries)
	counter("replayed_calls_total", "Retried calls served from the replay ledger without re-billing.", s.ReplayedCalls)
	counter("breaker_opens_total", "Circuit breakers tripped open.", s.BreakerOpens)
	counter("breaker_short_circuits_total", "Calls refused locally while a dataset's breaker was open.", s.BreakerShortCircuits)
	counter("breaker_probes_total", "Half-open probe calls let through after a breaker cooldown.", s.BreakerProbes)
	counter("failed_query_spend_transactions_total", "Transactions billed to queries that ultimately failed.", s.FailedQuerySpendTransactions)
	counter("failed_query_spend_price_total", "Money billed to queries that ultimately failed.", s.FailedQuerySpendPrice)
	counter("wal_appends_total", "Write-ahead-log appends in durable mode.", s.WALAppends)
	counter("wal_append_bytes_total", "Payload bytes appended to the write-ahead log.", s.WALAppendBytes)
	counter("wal_append_micros_total", "Cumulative WAL append wall-clock microseconds (including fsyncs).", s.WALAppendMicros)
	counter("wal_synced_appends_total", "WAL appends fsynced before Record returned.", s.WALSyncedAppends)
	counter("wal_replays_total", "Durable-store recoveries that replayed the log.", s.WALReplays)
	counter("wal_replayed_records_total", "WAL records applied during recovery.", s.WALReplayedRecords)
	counter("wal_skipped_records_total", "WAL records skipped as already covered by the loaded snapshot.", s.WALSkippedRecords)
	counter("wal_torn_tails_total", "Recoveries that truncated a torn WAL tail.", s.WALTornTails)
	counter("checkpoints_total", "Snapshot checkpoints completed.", s.Checkpoints)
	counter("checkpoint_failures_total", "Snapshot checkpoints that failed (log left intact).", s.CheckpointFailures)
	counter("checkpoint_bytes_total", "Bytes written by snapshot checkpoints.", s.CheckpointBytes)
	counter("checkpoint_micros_total", "Cumulative checkpoint wall-clock microseconds.", s.CheckpointMicros)
	counter("audit_dropped_total", "Audit records lost to sink write failures.", s.AuditDropped)
	counter("plan_cache_hits_total", "Plan-template cache lookups served from cache.", s.PlanCacheHits)
	counter("plan_cache_misses_total", "Plan-template cache lookups that missed.", s.PlanCacheMisses)
	counter("plan_cache_invalidations_total", "Cached plan skeletons discarded as stale (coverage epoch or stats version moved).", s.PlanCacheInvalidations)
	counter("plan_cache_evictions_total", "Cached plan skeletons displaced by the LRU capacity.", s.PlanCacheEvictions)
	counter("plans_cached_total", "Queries planned from the plan-template cache.", s.PlansCached)
	counter("plans_greedy_total", "Queries planned by the greedy fast path.", s.PlansGreedy)
	counter("plans_dp_total", "Queries planned by the full dynamic program.", s.PlansDP)
	counter("sched_singleflight_hits_total", "Calls served by joining an identical in-flight market call.", s.SchedSingleflightHits)
	counter("sched_merged_calls_total", "Wire calls the scheduler fused out of several cross-query boxes.", s.SchedMergedCalls)
	counter("sched_merged_transactions_saved_total", "Transactions saved by merged calls versus billing the parts.", s.SchedMergedTransactionsSaved)
	counter("sched_delayed_calls_total", "Fetches parked in the coalesce window to accumulate merge candidates.", s.SchedDelayedCalls)
	counter("federation_calls_total", "Market calls routed through the federation layer.", s.FederationCalls)
	counter("federation_failovers_total", "Endpoint attempts that hard-failed and failed over to the next endpoint.", s.FederationFailovers)
	counter("federation_hedged_calls_total", "Hedge attempts launched after the primary exceeded HedgeAfter.", s.FederationHedges)
	counter("federation_hedge_wins_total", "Hedges whose secondary endpoint answered first.", s.FederationHedgeWins)
	counter("federation_exhausted_total", "Calls that failed on every configured endpoint.", s.FederationExhausted)
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s gauge\n", prefix, name, help, prefix, name)
		fmt.Fprintf(w, "%s_%s %d\n", prefix, name, v)
	}
	gauge("inflight_queries", "Queries currently executing.", s.InflightQueries)
	gauge("queue_depth", "Requests currently queued for an execution slot.", s.QueueDepth)
	hist := func(name, help string, h HistogramSnapshot) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s histogram\n", prefix, name, help, prefix, name)
		for _, b := range h.Buckets {
			fmt.Fprintf(w, "%s_%s_bucket{le=\"%g\"} %d\n", prefix, name, b.Le.Seconds(), b.Count)
		}
		fmt.Fprintf(w, "%s_%s_bucket{le=\"+Inf\"} %d\n", prefix, name, h.Count)
		fmt.Fprintf(w, "%s_%s_sum %g\n", prefix, name, h.Sum.Seconds())
		fmt.Fprintf(w, "%s_%s_count %d\n", prefix, name, h.Count)
	}
	hist("query_duration_seconds", "End-to-end query latency.", s.QueryLatency)
	hist("call_duration_seconds", "Market call latency (including retries and paging).", s.CallLatency)
	hist("optimize_duration_seconds", "Optimizer latency per query.", s.OptimizeLatency)
}

// WriteCounterHead writes the HELP/TYPE preamble of one counter family in
// the Prometheus text exposition format. Samples follow via
// WriteLabeledCounter (or a plain fmt.Fprintf for unlabeled families).
func WriteCounterHead(w io.Writer, prefix, name, help string) {
	fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n", prefix, name, help, prefix, name)
}

// WriteLabeledCounter writes one counter sample carrying a single label
// pair. Go's %q quoting escapes backslash, double quote and newline exactly
// as the exposition format requires. The multi-tenant daemon renders its
// per-tenant spend families with it.
func WriteLabeledCounter(w io.Writer, prefix, name, label, labelValue string, v int64) {
	fmt.Fprintf(w, "%s_%s{%s=%q} %d\n", prefix, name, label, labelValue, v)
}

// Handler serves the registry at GET in Prometheus text format.
func (m *Metrics) Handler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.WritePrometheus(w, prefix)
	})
}
