package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	end := tr.StartSpan("parse")
	end(nil)
	tr.AddCall(CallRecord{Transactions: 3})
	tr.AddStoreHit(10)
	tr.AddStoreRows(5)
	tr.SetPlan("p", 1)
	tr.SetCounters(1, 2, 3)
	tr.Finish()
	if tr.CallTransactions() != 0 || tr.Retries() != 0 {
		t.Error("nil trace should sum to zero")
	}
	if got := tr.Describe(); !strings.Contains(got, "no trace") {
		t.Errorf("nil Describe: %q", got)
	}
}

func TestTraceAccumulates(t *testing.T) {
	tr := NewTrace("SELECT 1")
	end := tr.StartSpan("parse")
	end(nil)
	tr.AddCall(CallRecord{Table: "Weather", Records: 120, Transactions: 2, Price: 2, Retries: 1, Latency: time.Millisecond})
	tr.AddCall(CallRecord{Table: "Weather", Records: 30, Transactions: 1, Price: 1})
	tr.AddStoreHit(40)
	tr.SetPlan("Weather(scan,3) est=3", 3)
	tr.SetCounters(4, 5, 2)
	tr.Finish()

	if got := tr.CallTransactions(); got != 3 {
		t.Errorf("CallTransactions = %d, want 3", got)
	}
	if got := tr.Retries(); got != 1 {
		t.Errorf("Retries = %d, want 1", got)
	}
	if tr.Total <= 0 {
		t.Error("Finish should stamp Total")
	}
	out := tr.Describe()
	for _, want := range []string{"SELECT 1", "parse", "2 call(s)", "3 transactions", "Weather", "4 plans evaluated", "1 access(es) served locally"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q in:\n%s", want, out)
		}
	}
}

func TestSpanRecordsError(t *testing.T) {
	tr := NewTrace("x")
	end := tr.StartSpan("bind")
	end(context.Canceled)
	if len(tr.Spans) != 1 || tr.Spans[0].Err == "" {
		t.Fatalf("span error not recorded: %+v", tr.Spans)
	}
}

func TestContextCallPropagation(t *testing.T) {
	rec := &CallRecord{}
	ctx := ContextWithCall(context.Background(), rec)
	got := CallFromContext(ctx)
	if got != rec {
		t.Fatal("record did not round-trip through context")
	}
	got.AddRetry()
	got.AddRetry()
	if rec.Retries != 2 {
		t.Errorf("Retries = %d, want 2", rec.Retries)
	}
	if CallFromContext(context.Background()) != nil {
		t.Error("empty context should yield nil record")
	}
	var nilRec *CallRecord
	nilRec.AddRetry() // must not panic
}

func TestMetricsCountersAndPrometheus(t *testing.T) {
	m := NewMetrics()
	m.ObserveQuery(10*time.Millisecond, time.Millisecond, 2, 150, 3, 3)
	m.ObserveQueryError()
	tr := NewTrace("q")
	tr.AddCall(CallRecord{Latency: 4 * time.Millisecond, Retries: 1})
	tr.AddCall(CallRecord{Latency: 6 * time.Millisecond})
	tr.AddStoreHit(25)
	m.ObserveTrace(tr)

	s := m.Snapshot()
	if s.Queries != 1 || s.QueryErrors != 1 || s.Calls != 2 || s.Transactions != 3 {
		t.Errorf("snapshot counters: %+v", s)
	}
	if s.Retries != 1 || s.StoreHits != 1 || s.StoreHitRows != 25 {
		t.Errorf("trace-fed counters: %+v", s)
	}
	if s.CallLatency.Count != 2 {
		t.Errorf("call latency count = %d, want 2", s.CallLatency.Count)
	}
	if q := s.CallLatency.Quantile(0.5); q < 4*time.Millisecond || q > 10*time.Millisecond {
		t.Errorf("p50 call latency = %v", q)
	}

	var b strings.Builder
	m.WritePrometheus(&b, "payless")
	out := b.String()
	for _, want := range []string{
		"payless_queries_total 1",
		"payless_query_errors_total 1",
		"payless_calls_total 2",
		"payless_transactions_total 3",
		"payless_store_hit_rows_total 25",
		"payless_call_duration_seconds_count 2",
		`payless_call_duration_seconds_bucket{le="+Inf"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

func TestMetricsObserveCallSellerSide(t *testing.T) {
	m := NewMetrics()
	m.ObserveCall(2*time.Millisecond, 150, 2, 2)
	m.ObserveCall(3*time.Millisecond, 50, 1, 1)
	s := m.Snapshot()
	if s.Calls != 2 || s.Records != 200 || s.Transactions != 3 || s.Price != 3 {
		t.Errorf("seller-side counters: %+v", s)
	}
	srv := httptest.NewServer(m.Handler("market"))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "market_transactions_total 3") {
		t.Errorf("metrics endpoint output:\n%s", buf[:n])
	}
}

// TestFailureMetricsFamilies pins the Prometheus families the failure-
// recovery layer exports — CI greps dashboards and alerts against these
// names, so renaming one is a breaking change.
func TestFailureMetricsFamilies(t *testing.T) {
	m := NewMetrics()
	m.ObserveReplayedCall()
	m.ObserveBreakerOpen()
	m.ObserveBreakerShortCircuit()
	m.ObserveBreakerProbe()
	m.ObserveFailedQuerySpend(2, 150, 3, 3)

	s := m.Snapshot()
	if s.ReplayedCalls != 1 || s.BreakerOpens != 1 || s.BreakerShortCircuits != 1 || s.BreakerProbes != 1 {
		t.Errorf("failure counters: %+v", s)
	}
	if s.FailedQuerySpendTransactions != 3 || s.FailedQuerySpendPrice != 3 {
		t.Errorf("failed-spend counters: %+v", s)
	}

	// Both deployed prefixes: "payless" on the buyer client, "market" on the
	// seller handler.
	for _, prefix := range []string{"payless", "market"} {
		var b strings.Builder
		m.WritePrometheus(&b, prefix)
		out := b.String()
		for _, want := range []string{
			prefix + "_replayed_calls_total 1",
			prefix + "_breaker_opens_total 1",
			prefix + "_breaker_short_circuits_total 1",
			prefix + "_breaker_probes_total 1",
			prefix + "_failed_query_spend_transactions_total 3",
			prefix + "_failed_query_spend_price_total 3",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("prometheus output missing %q", want)
			}
		}
	}
}

// TestDurabilityMetricsFamilies pins the Prometheus families the durable
// store exports — like the failure families above, renaming one breaks
// dashboards and the crash-smoke CI greps.
func TestDurabilityMetricsFamilies(t *testing.T) {
	m := NewMetrics()
	m.ObserveWALAppend(100, true, 40)
	m.ObserveWALAppend(50, false, 10)
	m.ObserveWALReplay(7, 2, true)
	m.ObserveCheckpoint(1000, 300, true)
	m.ObserveCheckpoint(0, 0, false)
	m.ObserveAuditDrop()

	s := m.Snapshot()
	if s.WALAppends != 2 || s.WALAppendBytes != 150 || s.WALAppendMicros != 50 || s.WALSyncedAppends != 1 {
		t.Errorf("wal append counters: %+v", s)
	}
	if s.WALReplays != 1 || s.WALReplayedRecords != 7 || s.WALSkippedRecords != 2 || s.WALTornTails != 1 {
		t.Errorf("wal replay counters: %+v", s)
	}
	if s.Checkpoints != 1 || s.CheckpointFailures != 1 || s.CheckpointBytes != 1000 || s.CheckpointMicros != 300 {
		t.Errorf("checkpoint counters: %+v", s)
	}
	if s.AuditDropped != 1 {
		t.Errorf("audit drop counter: %+v", s)
	}

	var b strings.Builder
	m.WritePrometheus(&b, "payless")
	out := b.String()
	for _, want := range []string{
		"payless_wal_appends_total 2",
		"payless_wal_append_bytes_total 150",
		"payless_wal_append_micros_total 50",
		"payless_wal_synced_appends_total 1",
		"payless_wal_replays_total 1",
		"payless_wal_replayed_records_total 7",
		"payless_wal_skipped_records_total 2",
		"payless_wal_torn_tails_total 1",
		"payless_checkpoints_total 1",
		"payless_checkpoint_failures_total 1",
		"payless_checkpoint_bytes_total 1000",
		"payless_checkpoint_micros_total 300",
		"payless_audit_dropped_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

func TestNilMetricsIsNoOp(t *testing.T) {
	var m *Metrics
	m.ObserveQuery(time.Millisecond, 0, 1, 1, 1, 1)
	m.ObserveQueryError()
	m.ObserveTrace(NewTrace("q"))
	m.ObserveCall(time.Millisecond, 1, 1, 1)
	m.ObserveWALAppend(1, true, 1)
	m.ObserveWALReplay(1, 0, false)
	m.ObserveCheckpoint(1, 1, true)
	m.ObserveAuditDrop()
	if s := m.Snapshot(); s.Queries != 0 || s.WALAppends != 0 {
		t.Errorf("nil metrics snapshot: %+v", s)
	}
}

// TestFederationMetricsFamilies pins the Prometheus families the federated
// caller exports — the federation-smoke CI job and dashboards grep these
// names, so renaming one is a breaking change.
func TestFederationMetricsFamilies(t *testing.T) {
	m := NewMetrics()
	m.ObserveFederationCall()
	m.ObserveFederationCall()
	m.ObserveFederationFailover()
	m.ObserveFederationHedge()
	m.ObserveFederationHedgeWin()
	m.ObserveFederationExhausted()

	s := m.Snapshot()
	if s.FederationCalls != 2 || s.FederationFailovers != 1 ||
		s.FederationHedges != 1 || s.FederationHedgeWins != 1 || s.FederationExhausted != 1 {
		t.Errorf("federation counters: %+v", s)
	}

	var b strings.Builder
	m.WritePrometheus(&b, "payless")
	out := b.String()
	for _, want := range []string{
		"payless_federation_calls_total 2",
		"payless_federation_failovers_total 1",
		"payless_federation_hedged_calls_total 1",
		"payless_federation_hedge_wins_total 1",
		"payless_federation_exhausted_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	// Nil-safety of the federation observers (the federated caller takes a
	// possibly-nil sink).
	var nm *Metrics
	nm.ObserveFederationCall()
	nm.ObserveFederationFailover()
	nm.ObserveFederationHedge()
	nm.ObserveFederationHedgeWin()
	nm.ObserveFederationExhausted()
	if s := nm.Snapshot(); s.FederationCalls != 0 {
		t.Errorf("nil metrics federation snapshot: %+v", s)
	}
}

func TestOverloadMetricsFamilies(t *testing.T) {
	m := NewMetrics()
	m.AddInflight(1)
	m.AddInflight(1)
	m.AddInflight(-1)
	m.AddQueueDepth(1)
	m.AddQueueDepth(1)
	m.AddQueueDepth(1)
	m.AddQueueDepth(-1)

	s := m.Snapshot()
	if s.InflightQueries != 1 || s.QueueDepth != 2 {
		t.Errorf("gauges: inflight=%d queue=%d, want 1 2", s.InflightQueries, s.QueueDepth)
	}

	var b strings.Builder
	m.WritePrometheus(&b, "payless")
	out := b.String()
	// These names are scraped by dashboards: pin them exactly, including the
	// gauge TYPE lines.
	for _, want := range []string{
		"# TYPE payless_inflight_queries gauge",
		"payless_inflight_queries 1",
		"# TYPE payless_queue_depth gauge",
		"payless_queue_depth 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	var nm *Metrics
	nm.AddInflight(1)
	nm.AddQueueDepth(1)
	if s := nm.Snapshot(); s.InflightQueries != 0 || s.QueueDepth != 0 {
		t.Errorf("nil metrics gauge snapshot: %+v", s)
	}
}
