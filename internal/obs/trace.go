// Package obs is PayLess's observability layer: per-query execution traces
// and process-wide metrics. The paper's value claim is money saved per query
// (price = p·ceil(records/t), §2.1 Eq. 1), so the unit of observation here
// is the RESTful market call — every call's box, row count, transaction
// bill, retry count and latency is recorded, alongside the query's
// parse → bind → optimize → execute spans and how much of its data the
// semantic store served for free.
//
// The layer is pull-free and allocation-light: a nil *Trace is a valid
// no-op receiver, so instrumented code paths cost one nil check when
// tracing is disabled.
package obs

import (
	"fmt"
	"strings"
	"time"
)

// Span is one timed phase of a query (parse, bind, optimize, execute).
type Span struct {
	Name  string
	Start time.Time
	// Duration is the wall-clock time the phase took.
	Duration time.Duration
	// Err holds the phase's error text, empty on success.
	Err string
}

// CallRecord is one RESTful market call: where the money went.
type CallRecord struct {
	// Dataset and Table name the market relation called.
	Dataset string
	Table   string
	// Query renders the access query issued (predicates included).
	Query string
	// Records is the number of rows the call returned — the billed quantity.
	Records int64
	// Transactions billed: ceil(Records / t), 0 for an empty result.
	Transactions int64
	// Price charged for the call.
	Price float64
	// Retries counts extra transport attempts beyond the first (HTTP
	// connector only; the in-process market never retries).
	Retries int
	// Latency is the end-to-end call time including retries and paging.
	Latency time.Duration
	// Recorded reports whether the call's rows entered the semantic store
	// (the SQR path); NewRows is how many were new, i.e. not already owned.
	Recorded bool
	NewRows  int
	// Compacted is how many stored coverage entries recording this call
	// removed (absorbed by the new box or merged into a wider one).
	Compacted int
	// WALMicros is the time the call's write-ahead-log append took (durable
	// store only); WALSynced whether that append was fsynced before the
	// call's rows became billing-visible.
	WALMicros int64
	WALSynced bool
	// Coalesced reports that the global call scheduler served this call by
	// sharing or merging a wire call instead of issuing it verbatim;
	// SharedWith is how many other requesters rode the same wire call.
	// A coalesced non-paying participant shows Transactions == 0 — the one
	// bill is attributed to exactly one participant.
	Coalesced  bool
	SharedWith int
	// Endpoint names the federation endpoint that served the call (empty
	// when the client is not federated). Failovers counts the endpoints
	// that hard-failed before this one answered; Hedged reports that a
	// second endpoint was raced after HedgeAfter, and HedgeWon that the
	// hedge (not the primary) delivered the result.
	Endpoint  string
	Failovers int
	Hedged    bool
	HedgeWon  bool
}

// Trace is the execution trace of one query. It is populated by a single
// query execution (the engine appends call records in plan order under the
// client's control) and must not be read concurrently with the query run.
// All methods are safe on a nil receiver and do nothing, which is what
// makes the disabled-tracing path near-free.
type Trace struct {
	// SQL is the traced statement.
	SQL   string
	Start time.Time
	// Total is the end-to-end query duration, set by Finish.
	Total time.Duration
	// Plan is the optimizer's chosen plan, EstTransactions its price
	// estimate. Planner names the strategy that produced the plan
	// ("dp", "greedy" or "cached").
	Plan            string
	Planner         string
	EstTransactions int64
	// PlansEvaluated/BoxesEnumerated/BoxesKept mirror the optimizer's
	// search-effort counters (paper Figs. 14–15).
	PlansEvaluated  int
	BoxesEnumerated int
	BoxesKept       int
	// Spans are the query phases in execution order.
	Spans []Span
	// Calls are the market calls in plan-merge order: deterministic at
	// every fetch-concurrency level.
	Calls []CallRecord
	// StoreHits counts plan accesses served entirely from the semantic
	// store (zero-price relations, Theorem 2). StoreHitRows estimates the
	// rows served from the store rather than bought, across all accesses.
	StoreHits    int
	StoreHitRows int64
	// StoreLookups counts indexed coverage lookups during planning and
	// execution; StoreLookupMicros their cumulative wall-clock micros,
	// StorePrunedBoxes the stored boxes the index skipped before
	// subtraction, and StoreFastPathHits the lookups answered by a single
	// containing box.
	StoreLookups      int
	StoreLookupMicros int64
	StorePrunedBoxes  int64
	StoreFastPathHits int
}

// NewTrace starts a trace for one statement.
func NewTrace(sql string) *Trace {
	return &Trace{SQL: sql, Start: time.Now()}
}

// StartSpan opens a named phase and returns the closure that ends it. The
// returned func records the duration and the phase error (nil for success).
func (t *Trace) StartSpan(name string) func(err error) {
	if t == nil {
		return func(error) {}
	}
	start := time.Now()
	return func(err error) {
		sp := Span{Name: name, Start: start, Duration: time.Since(start)}
		if err != nil {
			sp.Err = err.Error()
		}
		t.Spans = append(t.Spans, sp)
	}
}

// AddCall appends one market call record.
func (t *Trace) AddCall(r CallRecord) {
	if t == nil {
		return
	}
	t.Calls = append(t.Calls, r)
}

// AddStoreHit records a plan access served entirely from the semantic store.
func (t *Trace) AddStoreHit(rows int64) {
	if t == nil {
		return
	}
	t.StoreHits++
	t.StoreHitRows += rows
}

// AddStoreLookup records one indexed coverage lookup: its duration, how
// many stored boxes the index pruned, and whether the single-containing-box
// fast path answered it.
func (t *Trace) AddStoreLookup(micros int64, pruned int, fastPath bool) {
	if t == nil {
		return
	}
	t.StoreLookups++
	t.StoreLookupMicros += micros
	t.StorePrunedBoxes += int64(pruned)
	if fastPath {
		t.StoreFastPathHits++
	}
}

// AddStoreRows records rows served from the store within a partially
// covered access (the remainder was bought, the rest was already owned).
func (t *Trace) AddStoreRows(rows int64) {
	if t == nil || rows <= 0 {
		return
	}
	t.StoreHitRows += rows
}

// SetPlan records the chosen plan and its price estimate.
func (t *Trace) SetPlan(plan string, estTransactions int64) {
	if t == nil {
		return
	}
	t.Plan = plan
	t.EstTransactions = estTransactions
}

// SetPlanner records which planning strategy produced the plan.
func (t *Trace) SetPlanner(planner string) {
	if t == nil {
		return
	}
	t.Planner = planner
}

// SetCounters records the optimizer's search-effort counters.
func (t *Trace) SetCounters(plansEvaluated, boxesEnumerated, boxesKept int) {
	if t == nil {
		return
	}
	t.PlansEvaluated = plansEvaluated
	t.BoxesEnumerated = boxesEnumerated
	t.BoxesKept = boxesKept
}

// Finish stamps the total query duration.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.Total = time.Since(t.Start)
}

// CallTransactions sums the transactions billed across all recorded calls.
// For a traced execution this equals the query report's Transactions
// exactly — the oracle the trace tests pin.
func (t *Trace) CallTransactions() int64 {
	if t == nil {
		return 0
	}
	var sum int64
	for _, c := range t.Calls {
		sum += c.Transactions
	}
	return sum
}

// Retries sums the transport retries across all recorded calls.
func (t *Trace) Retries() int64 {
	if t == nil {
		return 0
	}
	var sum int64
	for _, c := range t.Calls {
		sum += int64(c.Retries)
	}
	return sum
}

// Describe renders the trace as an EXPLAIN ANALYZE-style report: phases,
// the plan, one line per market call with its bill and latency, and the
// semantic-store contribution.
func (t *Trace) Describe() string {
	if t == nil {
		return "(no trace)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query: %s\n", t.SQL)
	for _, sp := range t.Spans {
		fmt.Fprintf(&b, "  %-9s %12v", sp.Name, sp.Duration)
		if sp.Err != "" {
			fmt.Fprintf(&b, "  error: %s", sp.Err)
		}
		b.WriteByte('\n')
	}
	if t.Plan != "" {
		fmt.Fprintf(&b, "  plan: %s\n", t.Plan)
	}
	if t.Planner != "" {
		fmt.Fprintf(&b, "  planner=%s\n", t.Planner)
	}
	if t.PlansEvaluated > 0 || t.BoxesEnumerated > 0 {
		fmt.Fprintf(&b, "  search: %d plans evaluated, %d boxes enumerated, %d kept\n",
			t.PlansEvaluated, t.BoxesEnumerated, t.BoxesKept)
	}
	var records int64
	var price float64
	for _, c := range t.Calls {
		records += c.Records
		price += c.Price
	}
	fmt.Fprintf(&b, "  market: %d call(s), %d records, %d transactions, $%.2f",
		len(t.Calls), records, t.CallTransactions(), price)
	if r := t.Retries(); r > 0 {
		fmt.Fprintf(&b, ", %d retries", r)
	}
	b.WriteByte('\n')
	for i, c := range t.Calls {
		name := c.Table
		if c.Dataset != "" {
			name = c.Dataset + "." + c.Table
		}
		fmt.Fprintf(&b, "   %2d. %-20s %6d rows %4d trans  $%.2f  %v",
			i+1, name, c.Records, c.Transactions, c.Price, c.Latency)
		if c.Retries > 0 {
			fmt.Fprintf(&b, "  (%d retries)", c.Retries)
		}
		if c.Endpoint != "" {
			fmt.Fprintf(&b, "  via %s", c.Endpoint)
			if c.Failovers > 0 {
				fmt.Fprintf(&b, " (%d failover(s))", c.Failovers)
			}
			if c.Hedged {
				if c.HedgeWon {
					b.WriteString(" hedge-won")
				} else {
					b.WriteString(" hedged")
				}
			}
		}
		if c.Recorded {
			fmt.Fprintf(&b, "  +%d new rows stored", c.NewRows)
		}
		if c.Coalesced {
			fmt.Fprintf(&b, "  coalesced(shared with %d)", c.SharedWith)
		}
		if c.WALMicros > 0 {
			fmt.Fprintf(&b, "  wal %dµs", c.WALMicros)
			if c.WALSynced {
				b.WriteString(" (synced)")
			}
		}
		b.WriteByte('\n')
		if c.Query != "" {
			fmt.Fprintf(&b, "       %s\n", c.Query)
		}
	}
	fmt.Fprintf(&b, "  store: %d access(es) served locally, ~%d rows reused\n",
		t.StoreHits, t.StoreHitRows)
	if t.StoreLookups > 0 {
		fmt.Fprintf(&b, "  store index: %d lookup(s) in %dµs, %d boxes pruned, %d fast-path\n",
			t.StoreLookups, t.StoreLookupMicros, t.StorePrunedBoxes, t.StoreFastPathHits)
	}
	if t.Total > 0 {
		fmt.Fprintf(&b, "  total: %v\n", t.Total)
	}
	return b.String()
}

// Tracer decides which queries are traced and receives finished traces.
// Implementations must be safe for concurrent use: one Client serves a
// whole buyer organisation.
type Tracer interface {
	// Begin returns the trace to populate for the statement, or nil to
	// leave the statement untraced.
	Begin(sql string) *Trace
	// Finish delivers the completed trace (also delivered on Result.Trace).
	Finish(t *Trace)
}

// CollectTracer traces every query and discards nothing: the finished
// trace is surfaced on Result.Trace only. It is the tracer the CLI's
// \trace mode and the tests use.
type CollectTracer struct{}

// Begin implements Tracer.
func (CollectTracer) Begin(sql string) *Trace { return NewTrace(sql) }

// Finish implements Tracer.
func (CollectTracer) Finish(*Trace) {}
