package tenant

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func testRegistry(t *testing.T, global int64, cfgs ...Config) *Registry {
	t.Helper()
	r, err := NewRegistry(global, cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegistryAuthenticate(t *testing.T) {
	r := testRegistry(t, 0,
		Config{Name: "alice", Key: "key-a"},
		Config{Name: "bob", Key: "key-b"},
	)
	a, err := r.Authenticate("key-a")
	if err != nil || a.Name() != "alice" {
		t.Fatalf("key-a -> %v, %v", a, err)
	}
	if _, err := r.Authenticate("nope"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad key: %v, want ErrBadKey", err)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	if _, err := NewRegistry(0, Config{Name: "a", Key: "k"}, Config{Name: "a", Key: "k2"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewRegistry(0, Config{Name: "a", Key: "k"}, Config{Name: "b", Key: "k"}); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if _, err := NewRegistry(0, Config{Name: "", Key: "k"}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestTenantBudgetReservation(t *testing.T) {
	r := testRegistry(t, 0, Config{Name: "a", Key: "k", Budget: 10})
	ten, _ := r.Lookup("a")
	ctx := WithTenant(context.Background(), ten)

	if err := r.Reserve(ctx, 6); err != nil {
		t.Fatal(err)
	}
	// 6 reserved: another 6 must bounce even though nothing is spent yet.
	if err := r.Reserve(ctx, 6); !errors.Is(err, ErrTenantOverBudget) {
		t.Fatalf("over-reservation: %v, want ErrTenantOverBudget", err)
	}
	// Settle to an actual of 4: 6 headroom returns.
	r.Settle(ctx, 6, 4)
	if got := ten.Spend(); got != 4 {
		t.Fatalf("spend after settle: %d, want 4", got)
	}
	if err := r.Reserve(ctx, 6); err != nil {
		t.Fatalf("reserve after settle: %v", err)
	}
	r.Settle(ctx, 6, 6)
	if err := r.Reserve(ctx, 1); !errors.Is(err, ErrTenantOverBudget) {
		t.Fatalf("budget exhausted but admitted: %v", err)
	}
}

func TestTenantBudgetRace(t *testing.T) {
	// 16 goroutines race a budget admitting exactly 4 of their reservations:
	// reservation-based admission must never overshoot.
	r := testRegistry(t, 0, Config{Name: "a", Key: "k", Budget: 4})
	ten, _ := r.Lookup("a")
	ctx := WithTenant(context.Background(), ten)
	var wg sync.WaitGroup
	admitted := make([]bool, 16)
	for i := range admitted {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if r.Reserve(ctx, 1) == nil {
				admitted[i] = true
			}
		}(i)
	}
	wg.Wait()
	n := 0
	for _, ok := range admitted {
		if ok {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("budget of 4 admitted %d unit reservations", n)
	}
}

func TestGlobalBudgetReleasesTenantReservation(t *testing.T) {
	r := testRegistry(t, 5,
		Config{Name: "a", Key: "ka", Budget: 100},
		Config{Name: "b", Key: "kb", Budget: 100},
	)
	a, _ := r.Lookup("a")
	b, _ := r.Lookup("b")
	actx := WithTenant(context.Background(), a)
	bctx := WithTenant(context.Background(), b)

	if err := r.Reserve(actx, 4); err != nil {
		t.Fatal(err)
	}
	// Global has 1 headroom left: b's 2 bounces off the GLOBAL budget and
	// must leave no residue on b's own account.
	if err := r.Reserve(bctx, 2); !errors.Is(err, ErrGlobalOverBudget) {
		t.Fatalf("global overshoot admitted: %v", err)
	}
	b.mu.Lock()
	res := b.reserved
	b.mu.Unlock()
	if res != 0 {
		t.Fatalf("failed global admission left %d reserved on the tenant", res)
	}
	r.Settle(actx, 4, 4)
	if err := r.Reserve(bctx, 1); err != nil {
		t.Fatalf("global headroom after settle: %v", err)
	}
}

func TestReserveWithoutTenantFails(t *testing.T) {
	r := testRegistry(t, 0, Config{Name: "a", Key: "k"})
	if err := r.Reserve(context.Background(), 1); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("tenantless reserve: %v, want ErrNoTenant", err)
	}
}

func TestTenantRateLimit(t *testing.T) {
	r := testRegistry(t, 0, Config{Name: "a", Key: "k", RatePerSec: 1, Burst: 2})
	ten, _ := r.Lookup("a")
	now := time.Unix(1700000000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := ten.Allow(now); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, retry := ten.Allow(now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 || retry > time.Second+time.Millisecond {
		t.Fatalf("retry-after %v, want (0, 1s]", retry)
	}
	// One token accrues per second.
	if ok, _ := ten.Allow(now.Add(time.Second)); !ok {
		t.Fatal("refilled bucket refused")
	}
	if ok, _ := ten.Allow(now.Add(time.Second)); ok {
		t.Fatal("second token admitted after one-second refill")
	}
	// Unlimited tenants always pass.
	free := testRegistry(t, 0, Config{Name: "f", Key: "kf"})
	ft, _ := free.Lookup("f")
	for i := 0; i < 100; i++ {
		if ok, _ := ft.Allow(now); !ok {
			t.Fatal("unlimited tenant throttled")
		}
	}
}

func TestWriteMetricsAttributesSpendPerTenant(t *testing.T) {
	r := testRegistry(t, 0,
		Config{Name: "alice", Key: "ka"},
		Config{Name: "bob", Key: "kb"},
	)
	a, _ := r.Lookup("alice")
	ctxA := WithTenant(context.Background(), a)
	if err := r.Reserve(ctxA, 7); err != nil {
		t.Fatal(err)
	}
	r.Settle(ctxA, 7, 7)

	var sb strings.Builder
	r.WriteMetrics(&sb, "paylessd")
	out := sb.String()
	for _, want := range []string{
		`paylessd_tenant_spend_total{tenant="alice"} 7`,
		`paylessd_tenant_spend_total{tenant="bob"} 0`,
		`paylessd_global_spend_total 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	// Deterministic order: alice renders before bob.
	if strings.Index(out, `tenant="alice"`) > strings.Index(out, `tenant="bob"`) {
		t.Fatalf("tenants not in sorted order:\n%s", out)
	}
}

func TestUpsertAddsAndReconfigures(t *testing.T) {
	r := testRegistry(t, 0, Config{Name: "alice", Key: "key-a", Budget: 10})

	// Add a new tenant at runtime.
	if err := r.Upsert(Config{Name: "bob", Key: "key-b", Weight: 2, Deadline: time.Second}); err != nil {
		t.Fatal(err)
	}
	b, err := r.Authenticate("key-b")
	if err != nil || b.Name() != "bob" {
		t.Fatalf("key-b -> %v, %v", b, err)
	}
	if b.Weight() != 2 || b.Deadline() != time.Second {
		t.Fatalf("weight=%v deadline=%v, want 2 1s", b.Weight(), b.Deadline())
	}

	// Spend some budget, then reconfigure: counters must survive, knobs
	// must change, and the old key must stop working after rotation.
	a, _ := r.Authenticate("key-a")
	ctx := WithTenant(context.Background(), a)
	if err := r.Reserve(ctx, 4); err != nil {
		t.Fatal(err)
	}
	r.Settle(ctx, 4, 4)
	if err := r.Upsert(Config{Name: "alice", Key: "key-a2", Budget: 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Authenticate("key-a"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("rotated-away key still works: %v", err)
	}
	a2, err := r.Authenticate("key-a2")
	if err != nil {
		t.Fatal(err)
	}
	if a2 != a {
		t.Fatal("reconfigure must keep the live tenant, not mint a new one")
	}
	if a2.Spend() != 4 {
		t.Fatalf("spend after reconfigure = %d, want 4 (preserved)", a2.Spend())
	}
	// New budget 5 with 4 already spent: a 2-transaction estimate must be
	// rejected under the reloaded budget.
	if err := r.Reserve(WithTenant(context.Background(), a2), 2); !errors.Is(err, ErrTenantOverBudget) {
		t.Fatalf("reloaded budget not enforced: %v", err)
	}
}

func TestUpsertRejectsForeignKey(t *testing.T) {
	r := testRegistry(t, 0,
		Config{Name: "alice", Key: "key-a"},
		Config{Name: "bob", Key: "key-b"},
	)
	if err := r.Upsert(Config{Name: "alice", Key: "key-b"}); err == nil {
		t.Fatal("stealing another tenant's key must fail")
	}
	if a, err := r.Authenticate("key-a"); err != nil || a.Name() != "alice" {
		t.Fatalf("failed upsert must leave the table untouched: %v %v", a, err)
	}
}

func TestRemoveTenant(t *testing.T) {
	r := testRegistry(t, 0, Config{Name: "alice", Key: "key-a"})
	a, _ := r.Authenticate("key-a")
	ctx := WithTenant(context.Background(), a)
	if err := r.Reserve(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if !r.Remove("alice") {
		t.Fatal("remove reported the tenant missing")
	}
	if r.Remove("alice") {
		t.Fatal("second remove must report false")
	}
	if _, err := r.Authenticate("key-a"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("removed tenant still authenticates: %v", err)
	}
	// The in-flight query settles against its held pointer; global spend
	// still books it.
	r.Settle(ctx, 3, 3)
	if got := r.GlobalSpend(); got != 3 {
		t.Fatalf("global spend = %d, want 3 (in-flight settle after removal)", got)
	}
}

func TestApplyHotReload(t *testing.T) {
	r := testRegistry(t, 100,
		Config{Name: "alice", Key: "key-a", Budget: 10},
		Config{Name: "bob", Key: "key-b"},
	)
	a, _ := r.Authenticate("key-a")
	ctx := WithTenant(context.Background(), a)
	if err := r.Reserve(ctx, 2); err != nil {
		t.Fatal(err)
	}
	r.Settle(ctx, 2, 2)

	// Reload: alice rotates key + budget, bob disappears, carol appears.
	err := r.Apply(50, []Config{
		{Name: "alice", Key: "key-a9", Budget: 20},
		{Name: "carol", Key: "key-c", RatePerSec: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r.Authenticate("key-a9")
	if err != nil || a2 != a {
		t.Fatalf("alice must survive the reload as the same live tenant: %v %v", a2, err)
	}
	if a2.Spend() != 2 {
		t.Fatalf("alice's spend lost across reload: %d", a2.Spend())
	}
	if _, err := r.Authenticate("key-b"); !errors.Is(err, ErrBadKey) {
		t.Fatal("bob must be gone after the reload")
	}
	if _, err := r.Authenticate("key-c"); err != nil {
		t.Fatalf("carol must exist after the reload: %v", err)
	}
	cfgs := r.Configs()
	if len(cfgs) != 2 || cfgs[0].Name != "alice" || cfgs[1].Name != "carol" {
		t.Fatalf("Configs() = %+v", cfgs)
	}

	// An invalid reload leaves everything untouched.
	if err := r.Apply(50, []Config{{Name: "x", Key: ""}}); err == nil {
		t.Fatal("invalid reload accepted")
	}
	if _, err := r.Authenticate("key-a9"); err != nil {
		t.Fatal("failed reload must leave the table untouched")
	}
}

func TestWeightDefaultsToOne(t *testing.T) {
	r := testRegistry(t, 0, Config{Name: "alice", Key: "key-a"})
	a, _ := r.Authenticate("key-a")
	if a.Weight() != 1 {
		t.Fatalf("unset weight = %v, want 1", a.Weight())
	}
	if a.Deadline() != 0 {
		t.Fatalf("unset deadline = %v, want 0", a.Deadline())
	}
}
