package tenant

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func testRegistry(t *testing.T, global int64, cfgs ...Config) *Registry {
	t.Helper()
	r, err := NewRegistry(global, cfgs...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegistryAuthenticate(t *testing.T) {
	r := testRegistry(t, 0,
		Config{Name: "alice", Key: "key-a"},
		Config{Name: "bob", Key: "key-b"},
	)
	a, err := r.Authenticate("key-a")
	if err != nil || a.Name() != "alice" {
		t.Fatalf("key-a -> %v, %v", a, err)
	}
	if _, err := r.Authenticate("nope"); !errors.Is(err, ErrBadKey) {
		t.Fatalf("bad key: %v, want ErrBadKey", err)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	if _, err := NewRegistry(0, Config{Name: "a", Key: "k"}, Config{Name: "a", Key: "k2"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewRegistry(0, Config{Name: "a", Key: "k"}, Config{Name: "b", Key: "k"}); err == nil {
		t.Fatal("duplicate key accepted")
	}
	if _, err := NewRegistry(0, Config{Name: "", Key: "k"}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestTenantBudgetReservation(t *testing.T) {
	r := testRegistry(t, 0, Config{Name: "a", Key: "k", Budget: 10})
	ten, _ := r.Lookup("a")
	ctx := WithTenant(context.Background(), ten)

	if err := r.Reserve(ctx, 6); err != nil {
		t.Fatal(err)
	}
	// 6 reserved: another 6 must bounce even though nothing is spent yet.
	if err := r.Reserve(ctx, 6); !errors.Is(err, ErrTenantOverBudget) {
		t.Fatalf("over-reservation: %v, want ErrTenantOverBudget", err)
	}
	// Settle to an actual of 4: 6 headroom returns.
	r.Settle(ctx, 6, 4)
	if got := ten.Spend(); got != 4 {
		t.Fatalf("spend after settle: %d, want 4", got)
	}
	if err := r.Reserve(ctx, 6); err != nil {
		t.Fatalf("reserve after settle: %v", err)
	}
	r.Settle(ctx, 6, 6)
	if err := r.Reserve(ctx, 1); !errors.Is(err, ErrTenantOverBudget) {
		t.Fatalf("budget exhausted but admitted: %v", err)
	}
}

func TestTenantBudgetRace(t *testing.T) {
	// 16 goroutines race a budget admitting exactly 4 of their reservations:
	// reservation-based admission must never overshoot.
	r := testRegistry(t, 0, Config{Name: "a", Key: "k", Budget: 4})
	ten, _ := r.Lookup("a")
	ctx := WithTenant(context.Background(), ten)
	var wg sync.WaitGroup
	admitted := make([]bool, 16)
	for i := range admitted {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if r.Reserve(ctx, 1) == nil {
				admitted[i] = true
			}
		}(i)
	}
	wg.Wait()
	n := 0
	for _, ok := range admitted {
		if ok {
			n++
		}
	}
	if n != 4 {
		t.Fatalf("budget of 4 admitted %d unit reservations", n)
	}
}

func TestGlobalBudgetReleasesTenantReservation(t *testing.T) {
	r := testRegistry(t, 5,
		Config{Name: "a", Key: "ka", Budget: 100},
		Config{Name: "b", Key: "kb", Budget: 100},
	)
	a, _ := r.Lookup("a")
	b, _ := r.Lookup("b")
	actx := WithTenant(context.Background(), a)
	bctx := WithTenant(context.Background(), b)

	if err := r.Reserve(actx, 4); err != nil {
		t.Fatal(err)
	}
	// Global has 1 headroom left: b's 2 bounces off the GLOBAL budget and
	// must leave no residue on b's own account.
	if err := r.Reserve(bctx, 2); !errors.Is(err, ErrGlobalOverBudget) {
		t.Fatalf("global overshoot admitted: %v", err)
	}
	b.mu.Lock()
	res := b.reserved
	b.mu.Unlock()
	if res != 0 {
		t.Fatalf("failed global admission left %d reserved on the tenant", res)
	}
	r.Settle(actx, 4, 4)
	if err := r.Reserve(bctx, 1); err != nil {
		t.Fatalf("global headroom after settle: %v", err)
	}
}

func TestReserveWithoutTenantFails(t *testing.T) {
	r := testRegistry(t, 0, Config{Name: "a", Key: "k"})
	if err := r.Reserve(context.Background(), 1); !errors.Is(err, ErrNoTenant) {
		t.Fatalf("tenantless reserve: %v, want ErrNoTenant", err)
	}
}

func TestTenantRateLimit(t *testing.T) {
	r := testRegistry(t, 0, Config{Name: "a", Key: "k", RatePerSec: 1, Burst: 2})
	ten, _ := r.Lookup("a")
	now := time.Unix(1700000000, 0)
	for i := 0; i < 2; i++ {
		if ok, _ := ten.Allow(now); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, retry := ten.Allow(now)
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retry <= 0 || retry > time.Second+time.Millisecond {
		t.Fatalf("retry-after %v, want (0, 1s]", retry)
	}
	// One token accrues per second.
	if ok, _ := ten.Allow(now.Add(time.Second)); !ok {
		t.Fatal("refilled bucket refused")
	}
	if ok, _ := ten.Allow(now.Add(time.Second)); ok {
		t.Fatal("second token admitted after one-second refill")
	}
	// Unlimited tenants always pass.
	free := testRegistry(t, 0, Config{Name: "f", Key: "kf"})
	ft, _ := free.Lookup("f")
	for i := 0; i < 100; i++ {
		if ok, _ := ft.Allow(now); !ok {
			t.Fatal("unlimited tenant throttled")
		}
	}
}

func TestWriteMetricsAttributesSpendPerTenant(t *testing.T) {
	r := testRegistry(t, 0,
		Config{Name: "alice", Key: "ka"},
		Config{Name: "bob", Key: "kb"},
	)
	a, _ := r.Lookup("alice")
	ctxA := WithTenant(context.Background(), a)
	if err := r.Reserve(ctxA, 7); err != nil {
		t.Fatal(err)
	}
	r.Settle(ctxA, 7, 7)

	var sb strings.Builder
	r.WriteMetrics(&sb, "paylessd")
	out := sb.String()
	for _, want := range []string{
		`paylessd_tenant_spend_total{tenant="alice"} 7`,
		`paylessd_tenant_spend_total{tenant="bob"} 0`,
		`paylessd_global_spend_total 7`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
	// Deterministic order: alice renders before bob.
	if strings.Index(out, `tenant="alice"`) > strings.Index(out, `tenant="bob"`) {
		t.Fatalf("tenants not in sorted order:\n%s", out)
	}
}
