// Package tenant is the multi-tenant daemon's account layer: static API-key
// authentication, per-tenant and global spending budgets enforced by
// reservation, per-tenant rate limits, and per-tenant billing attribution.
//
// The economics follow the shared semantic store's first-payer policy: the
// tenant whose query triggers a remainder fetch pays for it; every later
// tenant reads the purchased rows free. A Registry implements the payless
// Admitter hook, so one shared Client serves every tenant while budgets and
// spend stay per-tenant — the tenant rides the query's context.
package tenant

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"payless/internal/obs"
)

// Admission errors. The daemon maps ErrRateLimited to 429 and the budget
// errors to 402; ErrNoTenant/ErrBadKey to 401.
var (
	// ErrBadKey means the presented API key matches no registered tenant.
	ErrBadKey = errors.New("tenant: unknown API key")
	// ErrNoTenant means a query reached the admitter without a tenant on its
	// context — a daemon wiring bug, never a user error.
	ErrNoTenant = errors.New("tenant: no tenant on query context")
	// ErrTenantOverBudget means the estimate exceeds the tenant's remaining
	// budget (spent + reserved headroom).
	ErrTenantOverBudget = errors.New("tenant: estimated cost exceeds tenant budget")
	// ErrGlobalOverBudget means the estimate exceeds the daemon-wide budget.
	ErrGlobalOverBudget = errors.New("tenant: estimated cost exceeds global budget")
	// ErrRateLimited means the tenant's token bucket is empty.
	ErrRateLimited = errors.New("tenant: rate limit exceeded")
)

// Config declares one tenant.
type Config struct {
	// Name labels the tenant in metrics and logs; required, unique.
	Name string
	// Key is the tenant's static API key; required, unique.
	Key string
	// Budget caps the tenant's lifetime spend in transactions; 0 unlimited.
	Budget int64
	// RatePerSec caps the tenant's sustained query admission rate; 0
	// unlimited. Burst is the token-bucket depth (0 means a depth of
	// max(1, ceil(RatePerSec))).
	RatePerSec float64
	Burst      int
	// Weight scales the tenant's shed tolerance under overload: a tenant
	// with Weight 2 waits twice as long for an execution slot before being
	// shed as one with Weight 1. <= 0 means 1 (equal treatment).
	Weight float64
	// Deadline is the tenant's default per-query deadline, used when a
	// request neither carries an X-Deadline-Ms header nor relies on the
	// daemon-wide default. 0 falls back to the daemon default.
	Deadline time.Duration
}

// Tenant is one authenticated account's live state. All fields are guarded
// by mu; methods are safe for concurrent use.
type Tenant struct {
	name string

	mu       sync.Mutex
	budget   int64
	weight   float64
	deadline time.Duration
	spent    int64 // transactions actually billed to this tenant's queries
	reserved int64 // estimates of admitted, unsettled queries
	queries  int64 // queries admitted past the budget
	rejected int64 // queries rejected over budget

	// Token bucket. rate<=0 disables limiting.
	rate        float64
	burst       float64
	tokens      float64
	last        time.Time
	rateLimited int64
}

// Name returns the tenant's metric label.
func (t *Tenant) Name() string { return t.name }

// Weight returns the tenant's shed-tolerance multiplier (>= a minimum of a
// neutral 1 when unset).
func (t *Tenant) Weight() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.weight <= 0 {
		return 1
	}
	return t.weight
}

// Deadline returns the tenant's default per-query deadline; 0 defers to the
// daemon default.
func (t *Tenant) Deadline() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deadline
}

// Spend returns the transactions actually billed to this tenant so far.
func (t *Tenant) Spend() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spent
}

// Allow consumes one rate-limit token, reporting how long the caller should
// wait before retrying when the bucket is empty. Unlimited tenants always
// pass.
func (t *Tenant) Allow(now time.Time) (ok bool, retryAfter time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rate <= 0 {
		return true, 0
	}
	if !t.last.IsZero() {
		t.tokens += now.Sub(t.last).Seconds() * t.rate
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
	}
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	t.rateLimited++
	wait := time.Duration((1 - t.tokens) / t.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// reserve admits an estimate against the tenant budget, holding it until
// settle. Check and reservation are one critical section: two concurrent
// queries cannot both be admitted against the same headroom.
func (t *Tenant) reserve(est int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.budget > 0 && t.spent+t.reserved+est > t.budget {
		t.rejected++
		return fmt.Errorf("%w: tenant %s estimated %d on top of %d spent and %d reserved, budget %d",
			ErrTenantOverBudget, t.name, est, t.spent, t.reserved, t.budget)
	}
	t.reserved += est
	t.queries++
	return nil
}

// settle releases a reservation and books the actual bill.
func (t *Tenant) settle(est, actual int64) {
	t.mu.Lock()
	t.reserved -= est
	t.spent += actual
	t.mu.Unlock()
}

// Registry is the daemon's tenant table plus the global budget. It
// implements the payless Admitter interface: the tenant is carried on the
// query context (WithTenant/From), so one shared client serves every tenant.
type Registry struct {
	// tabmu guards the tenant table (byKey/byName/specs). It is separate
	// from mu (the global-budget lock) so admission hot paths and admin CRUD
	// never contend on one lock; reads vastly outnumber writes, hence RW.
	tabmu  sync.RWMutex
	byKey  map[string]*Tenant
	byName map[string]*Tenant
	specs  map[string]Config // declared configuration, for admin listing

	mu           sync.Mutex
	globalBudget int64
	globalSpent  int64
	globalRes    int64
	rejectedGlob int64
}

// newTenant builds a tenant's live state from its declaration.
func newTenant(c Config) *Tenant {
	burst := float64(c.Burst)
	if burst <= 0 && c.RatePerSec > 0 {
		burst = c.RatePerSec
		if burst < 1 {
			burst = 1
		}
	}
	return &Tenant{
		name: c.Name, budget: c.Budget, weight: c.Weight, deadline: c.Deadline,
		rate: c.RatePerSec, burst: burst, tokens: burst,
	}
}

// reconfigure updates a live tenant's declared knobs in place, preserving
// its spend, reservations and counters — a hot-reloaded tenant does not get
// a fresh budget.
func (t *Tenant) reconfigure(c Config) {
	burst := float64(c.Burst)
	if burst <= 0 && c.RatePerSec > 0 {
		burst = c.RatePerSec
		if burst < 1 {
			burst = 1
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.budget = c.Budget
	t.weight = c.Weight
	t.deadline = c.Deadline
	t.rate = c.RatePerSec
	t.burst = burst
	if t.tokens > burst {
		t.tokens = burst
	}
}

// validate checks one declaration against the other declarations in a set.
func validate(cfgs []Config) error {
	names := make(map[string]bool, len(cfgs))
	keys := make(map[string]bool, len(cfgs))
	for _, c := range cfgs {
		if c.Name == "" || c.Key == "" {
			return fmt.Errorf("tenant: name and key are required (name %q)", c.Name)
		}
		if names[c.Name] {
			return fmt.Errorf("tenant: duplicate name %q", c.Name)
		}
		if keys[c.Key] {
			return fmt.Errorf("tenant: duplicate key for %q", c.Name)
		}
		names[c.Name] = true
		keys[c.Key] = true
	}
	return nil
}

// NewRegistry builds a registry from tenant declarations. globalBudget caps
// the daemon's combined spend in transactions (0 unlimited).
func NewRegistry(globalBudget int64, tenants ...Config) (*Registry, error) {
	if err := validate(tenants); err != nil {
		return nil, err
	}
	r := &Registry{
		byKey:        make(map[string]*Tenant, len(tenants)),
		byName:       make(map[string]*Tenant, len(tenants)),
		specs:        make(map[string]Config, len(tenants)),
		globalBudget: globalBudget,
	}
	for _, c := range tenants {
		t := newTenant(c)
		r.byKey[c.Key] = t
		r.byName[c.Name] = t
		r.specs[c.Name] = c
	}
	return r, nil
}

// Authenticate resolves an API key to its tenant.
func (r *Registry) Authenticate(key string) (*Tenant, error) {
	r.tabmu.RLock()
	t, ok := r.byKey[key]
	r.tabmu.RUnlock()
	if ok {
		return t, nil
	}
	return nil, ErrBadKey
}

// Lookup resolves a tenant by name (tests and introspection).
func (r *Registry) Lookup(name string) (*Tenant, bool) {
	r.tabmu.RLock()
	defer r.tabmu.RUnlock()
	t, ok := r.byName[name]
	return t, ok
}

// Configs lists the declared tenant configurations in name order — what the
// admin API serves. Live counters are not included; those are metrics.
func (r *Registry) Configs() []Config {
	r.tabmu.RLock()
	defer r.tabmu.RUnlock()
	out := make([]Config, 0, len(r.specs))
	for _, c := range r.specs {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Upsert adds a tenant or reconfigures an existing one (matched by name) at
// runtime. A reconfigured tenant keeps its spend, reservations and counters
// — only the declared knobs (key, budget, rate, weight, deadline) change.
// The key must not belong to a different tenant. In-flight queries holding
// the *Tenant keep settling against it either way.
func (r *Registry) Upsert(c Config) error {
	if err := validate([]Config{c}); err != nil {
		return err
	}
	r.tabmu.Lock()
	defer r.tabmu.Unlock()
	if other, ok := r.byKey[c.Key]; ok && other.name != c.Name {
		return fmt.Errorf("tenant: key already belongs to %q", other.name)
	}
	t, exists := r.byName[c.Name]
	if exists {
		delete(r.byKey, r.specs[c.Name].Key)
		t.reconfigure(c)
	} else {
		t = newTenant(c)
		r.byName[c.Name] = t
	}
	r.byKey[c.Key] = t
	r.specs[c.Name] = c
	return nil
}

// Remove deletes a tenant by name, reporting whether it existed. Queries
// already in flight hold the *Tenant pointer and settle normally; new
// requests with its key fail authentication immediately.
func (r *Registry) Remove(name string) bool {
	r.tabmu.Lock()
	defer r.tabmu.Unlock()
	c, ok := r.specs[name]
	if !ok {
		return false
	}
	delete(r.byKey, c.Key)
	delete(r.byName, name)
	delete(r.specs, name)
	return true
}

// Apply replaces the whole tenant table and the global budget in one swap —
// the SIGHUP hot-reload path. Tenants matched by name carry their live
// state (spend, reservations, counters) across the swap; tenants absent
// from the new set are removed; new names start fresh. The set is validated
// first, so a bad reload leaves the registry untouched.
func (r *Registry) Apply(globalBudget int64, cfgs []Config) error {
	if err := validate(cfgs); err != nil {
		return err
	}
	r.tabmu.Lock()
	byKey := make(map[string]*Tenant, len(cfgs))
	byName := make(map[string]*Tenant, len(cfgs))
	specs := make(map[string]Config, len(cfgs))
	for _, c := range cfgs {
		t, exists := r.byName[c.Name]
		if exists {
			t.reconfigure(c)
		} else {
			t = newTenant(c)
		}
		byKey[c.Key] = t
		byName[c.Name] = t
		specs[c.Name] = c
	}
	r.byKey, r.byName, r.specs = byKey, byName, specs
	r.tabmu.Unlock()
	r.mu.Lock()
	r.globalBudget = globalBudget
	r.mu.Unlock()
	return nil
}

// ctxKey keys the tenant on a query context.
type ctxKey struct{}

// WithTenant attaches a tenant to a query context.
func WithTenant(ctx context.Context, t *Tenant) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// From extracts the tenant a query runs as.
func From(ctx context.Context) (*Tenant, bool) {
	t, ok := ctx.Value(ctxKey{}).(*Tenant)
	return t, ok
}

// Reserve implements the payless Admitter hook: the estimate is reserved
// against the querying tenant's budget first, then the global budget; a
// global rejection releases the tenant reservation, so a failed admission
// leaves no residue.
func (r *Registry) Reserve(ctx context.Context, est int64) error {
	t, ok := From(ctx)
	if !ok {
		return ErrNoTenant
	}
	if err := t.reserve(est); err != nil {
		return err
	}
	r.mu.Lock()
	if r.globalBudget > 0 && r.globalSpent+r.globalRes+est > r.globalBudget {
		spent, reserved := r.globalSpent, r.globalRes
		r.rejectedGlob++
		r.mu.Unlock()
		t.settle(est, 0)
		return fmt.Errorf("%w: estimated %d on top of %d spent and %d reserved, budget %d",
			ErrGlobalOverBudget, est, spent, reserved, r.globalBudget)
	}
	r.globalRes += est
	r.mu.Unlock()
	return nil
}

// Settle implements the payless Admitter hook: the reservation is released
// and the actual bill booked on the tenant whose query spent it — the
// first-payer attribution the shared store's economics rest on.
func (r *Registry) Settle(ctx context.Context, est, actual int64) {
	t, ok := From(ctx)
	if !ok {
		return
	}
	t.settle(est, actual)
	r.mu.Lock()
	r.globalRes -= est
	r.globalSpent += actual
	r.mu.Unlock()
}

// GlobalSpend reports the transactions billed across all tenants.
func (r *Registry) GlobalSpend() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.globalSpent
}

// WriteMetrics renders the per-tenant families in the Prometheus text
// exposition format under the given prefix: spend, reserved estimates,
// admitted queries, and budget/rate rejections, labeled by tenant, plus the
// global spend line. Tenants render in sorted name order so scrapes diff
// cleanly.
func (r *Registry) WriteMetrics(w io.Writer, prefix string) {
	type row struct {
		name                                      string
		spent, reserved, queries, rejected, rated int64
	}
	r.tabmu.RLock()
	names := make([]string, 0, len(r.byName))
	for name := range r.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	rows := make([]row, 0, len(names))
	for _, name := range names {
		t := r.byName[name]
		t.mu.Lock()
		rows = append(rows, row{name, t.spent, t.reserved, t.queries, t.rejected, t.rateLimited})
		t.mu.Unlock()
	}
	r.tabmu.RUnlock()
	obs.WriteCounterHead(w, prefix, "tenant_spend_total", "Transactions billed to queries this tenant triggered (first-payer attribution).")
	for _, x := range rows {
		obs.WriteLabeledCounter(w, prefix, "tenant_spend_total", "tenant", x.name, x.spent)
	}
	obs.WriteCounterHead(w, prefix, "tenant_reserved_transactions", "Estimated transactions held by this tenant's in-flight queries.")
	for _, x := range rows {
		obs.WriteLabeledCounter(w, prefix, "tenant_reserved_transactions", "tenant", x.name, x.reserved)
	}
	obs.WriteCounterHead(w, prefix, "tenant_queries_total", "Queries admitted past this tenant's budget.")
	for _, x := range rows {
		obs.WriteLabeledCounter(w, prefix, "tenant_queries_total", "tenant", x.name, x.queries)
	}
	obs.WriteCounterHead(w, prefix, "tenant_rejected_budget_total", "Queries rejected over the tenant budget.")
	for _, x := range rows {
		obs.WriteLabeledCounter(w, prefix, "tenant_rejected_budget_total", "tenant", x.name, x.rejected)
	}
	obs.WriteCounterHead(w, prefix, "tenant_rate_limited_total", "Queries rejected by the tenant rate limit.")
	for _, x := range rows {
		obs.WriteLabeledCounter(w, prefix, "tenant_rate_limited_total", "tenant", x.name, x.rated)
	}
	r.mu.Lock()
	spent, rejected := r.globalSpent, r.rejectedGlob
	r.mu.Unlock()
	obs.WriteCounterHead(w, prefix, "global_spend_total", "Transactions billed across all tenants.")
	fmt.Fprintf(w, "%s_global_spend_total %d\n", prefix, spent)
	obs.WriteCounterHead(w, prefix, "global_rejected_budget_total", "Queries rejected over the global budget.")
	fmt.Fprintf(w, "%s_global_rejected_budget_total %d\n", prefix, rejected)
}
