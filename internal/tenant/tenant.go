// Package tenant is the multi-tenant daemon's account layer: static API-key
// authentication, per-tenant and global spending budgets enforced by
// reservation, per-tenant rate limits, and per-tenant billing attribution.
//
// The economics follow the shared semantic store's first-payer policy: the
// tenant whose query triggers a remainder fetch pays for it; every later
// tenant reads the purchased rows free. A Registry implements the payless
// Admitter hook, so one shared Client serves every tenant while budgets and
// spend stay per-tenant — the tenant rides the query's context.
package tenant

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"payless/internal/obs"
)

// Admission errors. The daemon maps ErrRateLimited to 429 and the budget
// errors to 402; ErrNoTenant/ErrBadKey to 401.
var (
	// ErrBadKey means the presented API key matches no registered tenant.
	ErrBadKey = errors.New("tenant: unknown API key")
	// ErrNoTenant means a query reached the admitter without a tenant on its
	// context — a daemon wiring bug, never a user error.
	ErrNoTenant = errors.New("tenant: no tenant on query context")
	// ErrTenantOverBudget means the estimate exceeds the tenant's remaining
	// budget (spent + reserved headroom).
	ErrTenantOverBudget = errors.New("tenant: estimated cost exceeds tenant budget")
	// ErrGlobalOverBudget means the estimate exceeds the daemon-wide budget.
	ErrGlobalOverBudget = errors.New("tenant: estimated cost exceeds global budget")
	// ErrRateLimited means the tenant's token bucket is empty.
	ErrRateLimited = errors.New("tenant: rate limit exceeded")
)

// Config declares one tenant.
type Config struct {
	// Name labels the tenant in metrics and logs; required, unique.
	Name string
	// Key is the tenant's static API key; required, unique.
	Key string
	// Budget caps the tenant's lifetime spend in transactions; 0 unlimited.
	Budget int64
	// RatePerSec caps the tenant's sustained query admission rate; 0
	// unlimited. Burst is the token-bucket depth (0 means a depth of
	// max(1, ceil(RatePerSec))).
	RatePerSec float64
	Burst      int
}

// Tenant is one authenticated account's live state. All fields are guarded
// by mu; methods are safe for concurrent use.
type Tenant struct {
	name   string
	budget int64

	mu       sync.Mutex
	spent    int64 // transactions actually billed to this tenant's queries
	reserved int64 // estimates of admitted, unsettled queries
	queries  int64 // queries admitted past the budget
	rejected int64 // queries rejected over budget

	// Token bucket. rate<=0 disables limiting.
	rate        float64
	burst       float64
	tokens      float64
	last        time.Time
	rateLimited int64
}

// Name returns the tenant's metric label.
func (t *Tenant) Name() string { return t.name }

// Spend returns the transactions actually billed to this tenant so far.
func (t *Tenant) Spend() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spent
}

// Allow consumes one rate-limit token, reporting how long the caller should
// wait before retrying when the bucket is empty. Unlimited tenants always
// pass.
func (t *Tenant) Allow(now time.Time) (ok bool, retryAfter time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rate <= 0 {
		return true, 0
	}
	if !t.last.IsZero() {
		t.tokens += now.Sub(t.last).Seconds() * t.rate
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
	}
	t.last = now
	if t.tokens >= 1 {
		t.tokens--
		return true, 0
	}
	t.rateLimited++
	wait := time.Duration((1 - t.tokens) / t.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// reserve admits an estimate against the tenant budget, holding it until
// settle. Check and reservation are one critical section: two concurrent
// queries cannot both be admitted against the same headroom.
func (t *Tenant) reserve(est int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.budget > 0 && t.spent+t.reserved+est > t.budget {
		t.rejected++
		return fmt.Errorf("%w: tenant %s estimated %d on top of %d spent and %d reserved, budget %d",
			ErrTenantOverBudget, t.name, est, t.spent, t.reserved, t.budget)
	}
	t.reserved += est
	t.queries++
	return nil
}

// settle releases a reservation and books the actual bill.
func (t *Tenant) settle(est, actual int64) {
	t.mu.Lock()
	t.reserved -= est
	t.spent += actual
	t.mu.Unlock()
}

// Registry is the daemon's tenant table plus the global budget. It
// implements the payless Admitter interface: the tenant is carried on the
// query context (WithTenant/From), so one shared client serves every tenant.
type Registry struct {
	byKey  map[string]*Tenant
	names  []string // sorted, for deterministic metric rendering
	byName map[string]*Tenant

	globalBudget int64
	mu           sync.Mutex
	globalSpent  int64
	globalRes    int64
	rejectedGlob int64
}

// NewRegistry builds a registry from tenant declarations. globalBudget caps
// the daemon's combined spend in transactions (0 unlimited).
func NewRegistry(globalBudget int64, tenants ...Config) (*Registry, error) {
	r := &Registry{
		byKey:        make(map[string]*Tenant, len(tenants)),
		byName:       make(map[string]*Tenant, len(tenants)),
		globalBudget: globalBudget,
	}
	for _, c := range tenants {
		if c.Name == "" || c.Key == "" {
			return nil, fmt.Errorf("tenant: name and key are required (name %q)", c.Name)
		}
		if _, dup := r.byName[c.Name]; dup {
			return nil, fmt.Errorf("tenant: duplicate name %q", c.Name)
		}
		if _, dup := r.byKey[c.Key]; dup {
			return nil, fmt.Errorf("tenant: duplicate key for %q", c.Name)
		}
		burst := float64(c.Burst)
		if burst <= 0 && c.RatePerSec > 0 {
			burst = c.RatePerSec
			if burst < 1 {
				burst = 1
			}
		}
		t := &Tenant{name: c.Name, budget: c.Budget, rate: c.RatePerSec, burst: burst, tokens: burst}
		r.byKey[c.Key] = t
		r.byName[c.Name] = t
		r.names = append(r.names, c.Name)
	}
	sort.Strings(r.names)
	return r, nil
}

// Authenticate resolves an API key to its tenant.
func (r *Registry) Authenticate(key string) (*Tenant, error) {
	if t, ok := r.byKey[key]; ok {
		return t, nil
	}
	return nil, ErrBadKey
}

// Lookup resolves a tenant by name (tests and introspection).
func (r *Registry) Lookup(name string) (*Tenant, bool) {
	t, ok := r.byName[name]
	return t, ok
}

// ctxKey keys the tenant on a query context.
type ctxKey struct{}

// WithTenant attaches a tenant to a query context.
func WithTenant(ctx context.Context, t *Tenant) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// From extracts the tenant a query runs as.
func From(ctx context.Context) (*Tenant, bool) {
	t, ok := ctx.Value(ctxKey{}).(*Tenant)
	return t, ok
}

// Reserve implements the payless Admitter hook: the estimate is reserved
// against the querying tenant's budget first, then the global budget; a
// global rejection releases the tenant reservation, so a failed admission
// leaves no residue.
func (r *Registry) Reserve(ctx context.Context, est int64) error {
	t, ok := From(ctx)
	if !ok {
		return ErrNoTenant
	}
	if err := t.reserve(est); err != nil {
		return err
	}
	r.mu.Lock()
	if r.globalBudget > 0 && r.globalSpent+r.globalRes+est > r.globalBudget {
		spent, reserved := r.globalSpent, r.globalRes
		r.rejectedGlob++
		r.mu.Unlock()
		t.settle(est, 0)
		return fmt.Errorf("%w: estimated %d on top of %d spent and %d reserved, budget %d",
			ErrGlobalOverBudget, est, spent, reserved, r.globalBudget)
	}
	r.globalRes += est
	r.mu.Unlock()
	return nil
}

// Settle implements the payless Admitter hook: the reservation is released
// and the actual bill booked on the tenant whose query spent it — the
// first-payer attribution the shared store's economics rest on.
func (r *Registry) Settle(ctx context.Context, est, actual int64) {
	t, ok := From(ctx)
	if !ok {
		return
	}
	t.settle(est, actual)
	r.mu.Lock()
	r.globalRes -= est
	r.globalSpent += actual
	r.mu.Unlock()
}

// GlobalSpend reports the transactions billed across all tenants.
func (r *Registry) GlobalSpend() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.globalSpent
}

// WriteMetrics renders the per-tenant families in the Prometheus text
// exposition format under the given prefix: spend, reserved estimates,
// admitted queries, and budget/rate rejections, labeled by tenant, plus the
// global spend line. Tenants render in sorted name order so scrapes diff
// cleanly.
func (r *Registry) WriteMetrics(w io.Writer, prefix string) {
	type row struct {
		name                                      string
		spent, reserved, queries, rejected, rated int64
	}
	rows := make([]row, 0, len(r.names))
	for _, name := range r.names {
		t := r.byName[name]
		t.mu.Lock()
		rows = append(rows, row{name, t.spent, t.reserved, t.queries, t.rejected, t.rateLimited})
		t.mu.Unlock()
	}
	obs.WriteCounterHead(w, prefix, "tenant_spend_total", "Transactions billed to queries this tenant triggered (first-payer attribution).")
	for _, x := range rows {
		obs.WriteLabeledCounter(w, prefix, "tenant_spend_total", "tenant", x.name, x.spent)
	}
	obs.WriteCounterHead(w, prefix, "tenant_reserved_transactions", "Estimated transactions held by this tenant's in-flight queries.")
	for _, x := range rows {
		obs.WriteLabeledCounter(w, prefix, "tenant_reserved_transactions", "tenant", x.name, x.reserved)
	}
	obs.WriteCounterHead(w, prefix, "tenant_queries_total", "Queries admitted past this tenant's budget.")
	for _, x := range rows {
		obs.WriteLabeledCounter(w, prefix, "tenant_queries_total", "tenant", x.name, x.queries)
	}
	obs.WriteCounterHead(w, prefix, "tenant_rejected_budget_total", "Queries rejected over the tenant budget.")
	for _, x := range rows {
		obs.WriteLabeledCounter(w, prefix, "tenant_rejected_budget_total", "tenant", x.name, x.rejected)
	}
	obs.WriteCounterHead(w, prefix, "tenant_rate_limited_total", "Queries rejected by the tenant rate limit.")
	for _, x := range rows {
		obs.WriteLabeledCounter(w, prefix, "tenant_rate_limited_total", "tenant", x.name, x.rated)
	}
	r.mu.Lock()
	spent, rejected := r.globalSpent, r.rejectedGlob
	r.mu.Unlock()
	obs.WriteCounterHead(w, prefix, "global_spend_total", "Transactions billed across all tenants.")
	fmt.Fprintf(w, "%s_global_spend_total %d\n", prefix, spent)
	obs.WriteCounterHead(w, prefix, "global_rejected_budget_total", "Queries rejected over the global budget.")
	fmt.Fprintf(w, "%s_global_rejected_budget_total %d\n", prefix, rejected)
}
