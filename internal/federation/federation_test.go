package federation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"payless/internal/catalog"
	"payless/internal/engine"
	"payless/internal/market"
	"payless/internal/obs"
)

// countingCaller serves every call with a fixed one-transaction result and
// counts attempts; fail, while set, turns attempts into hard errors.
type countingCaller struct {
	name  string
	calls atomic.Int64
	fail  atomic.Bool
	// block, when non-nil, parks every attempt until the context dies or
	// the channel closes (for hedge/cancellation tests).
	block chan struct{}
	// seenID records the CallIDs presented, for idempotency assertions.
	mu      sync.Mutex
	seenIDs []string
}

func (c *countingCaller) Call(ctx context.Context, q catalog.AccessQuery) (market.Result, error) {
	c.calls.Add(1)
	c.mu.Lock()
	c.seenIDs = append(c.seenIDs, q.CallID)
	c.mu.Unlock()
	if c.block != nil {
		select {
		case <-ctx.Done():
			return market.Result{}, ctx.Err()
		case <-c.block:
		}
	}
	if c.fail.Load() {
		return market.Result{}, fmt.Errorf("endpoint %s down", c.name)
	}
	return market.Result{Records: 1, Transactions: 1, Price: 1}, nil
}

func (c *countingCaller) lastID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.seenIDs) == 0 {
		return ""
	}
	return c.seenIDs[len(c.seenIDs)-1]
}

func q(ds, table string) catalog.AccessQuery {
	return catalog.AccessQuery{Dataset: ds, Table: table}
}

func TestRankPrefersCheaperEndpoint(t *testing.T) {
	cheap := &countingCaller{name: "cheap"}
	costly := &countingCaller{name: "costly"}
	f, err := New([]Endpoint{
		{Name: "costly", Caller: costly, PriceFactor: 2},
		{Name: "cheap", Caller: cheap, PriceFactor: 1},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := f.Call(context.Background(), q("DS", "T")); err != nil {
			t.Fatal(err)
		}
	}
	if cheap.calls.Load() != 5 || costly.calls.Load() != 0 {
		t.Fatalf("cheap=%d costly=%d, want all 5 at the cheaper mirror",
			cheap.calls.Load(), costly.calls.Load())
	}
}

func TestLatencyHintBreaksPriceTie(t *testing.T) {
	near := &countingCaller{name: "near"}
	far := &countingCaller{name: "far"}
	f, err := New([]Endpoint{
		{Name: "far", Caller: far, LatencyHint: 500 * time.Millisecond},
		{Name: "near", Caller: near, LatencyHint: 5 * time.Millisecond},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Call(context.Background(), q("DS", "T")); err != nil {
		t.Fatal(err)
	}
	if near.calls.Load() != 1 || far.calls.Load() != 0 {
		t.Fatalf("near=%d far=%d, want the lower-latency mirror at equal price",
			near.calls.Load(), far.calls.Load())
	}
}

func TestFailoverToNextCheapestEndpoint(t *testing.T) {
	m := obs.NewMetrics()
	cheap := &countingCaller{name: "cheap"}
	cheap.fail.Store(true)
	costly := &countingCaller{name: "costly"}
	f, err := New([]Endpoint{
		{Name: "cheap", Caller: cheap, PriceFactor: 1},
		{Name: "costly", Caller: costly, PriceFactor: 2},
	}, Config{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	rec := &obs.CallRecord{}
	ctx := obs.ContextWithCall(context.Background(), rec)
	res, err := f.Call(ctx, q("DS", "T"))
	if err != nil {
		t.Fatalf("failover should have served the call: %v", err)
	}
	if res.Transactions != 1 {
		t.Fatalf("transactions=%d, want 1", res.Transactions)
	}
	if cheap.calls.Load() != 1 || costly.calls.Load() != 1 {
		t.Fatalf("cheap=%d costly=%d, want one attempt each", cheap.calls.Load(), costly.calls.Load())
	}
	if rec.Endpoint != "costly" || rec.Failovers != 1 {
		t.Fatalf("trace endpoint=%q failovers=%d, want costly/1", rec.Endpoint, rec.Failovers)
	}
	s := m.Snapshot()
	if s.FederationCalls != 1 || s.FederationFailovers != 1 {
		t.Fatalf("metrics calls=%d failovers=%d, want 1/1", s.FederationCalls, s.FederationFailovers)
	}
	// Both endpoints must have seen the same idempotent CallID: a retry
	// against either replays instead of re-billing.
	if id := cheap.lastID(); id == "" || id != costly.lastID() {
		t.Fatalf("CallIDs differ across endpoints: %q vs %q", cheap.lastID(), costly.lastID())
	}
}

// TestBreakerIsPerEndpointAndDataset is the PR 4 → federation migration
// property: one dead mirror's open breaker must not blacklist the dataset
// at healthy mirrors, and must not blacklist the dead mirror's other
// datasets either.
func TestBreakerIsPerEndpointAndDataset(t *testing.T) {
	dead := &countingCaller{name: "dead"}
	dead.fail.Store(true)
	live := &countingCaller{name: "live"}
	f, err := New([]Endpoint{
		{Name: "dead", Caller: dead, PriceFactor: 1},
		{Name: "live", Caller: live, PriceFactor: 2},
	}, Config{BreakerThreshold: 1, BreakerCooldown: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	// First call on DS: dead attempts and trips dead|DS; live serves.
	if _, err := f.Call(context.Background(), q("DS", "T")); err != nil {
		t.Fatal(err)
	}
	if dead.calls.Load() != 1 {
		t.Fatalf("dead attempts=%d, want 1", dead.calls.Load())
	}
	// Second call on DS: dead|DS is open, dead is skipped without an attempt.
	if _, err := f.Call(context.Background(), q("DS", "T")); err != nil {
		t.Fatal(err)
	}
	if dead.calls.Load() != 1 {
		t.Fatalf("dead attempted while its breaker was open (attempts=%d)", dead.calls.Load())
	}
	if live.calls.Load() != 2 {
		t.Fatalf("live served %d, want 2 — the dataset must stay available", live.calls.Load())
	}
	// A different dataset still probes the dead mirror: dead|DS2 is closed.
	if _, err := f.Call(context.Background(), q("DS2", "T2")); err != nil {
		t.Fatal(err)
	}
	if dead.calls.Load() != 2 {
		t.Fatalf("dead|DS2 should be independent of dead|DS (attempts=%d, want 2)", dead.calls.Load())
	}
}

func TestAllEndpointsOpenReturnsCircuitOpenWithRetryAfter(t *testing.T) {
	m := obs.NewMetrics()
	a := &countingCaller{name: "a"}
	a.fail.Store(true)
	b := &countingCaller{name: "b"}
	b.fail.Store(true)
	f, err := New([]Endpoint{
		{Name: "a", Caller: a},
		{Name: "b", Caller: b},
	}, Config{BreakerThreshold: 1, BreakerCooldown: time.Hour, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	// First call: both attempted, both trip, call fails hard.
	if _, err := f.Call(context.Background(), q("DS", "T")); err == nil {
		t.Fatal("both endpoints down: want an error")
	}
	// Second call: both refused — a circuit-open error carrying the soonest
	// re-probe time, for the daemon's 503 + Retry-After.
	_, err = f.Call(context.Background(), q("DS", "T"))
	if !errors.Is(err, engine.ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	var coe *engine.CircuitOpenError
	if !errors.As(err, &coe) || coe.RetryAfter <= 0 {
		t.Fatalf("want CircuitOpenError with positive RetryAfter, got %v", err)
	}
	if s := m.Snapshot(); s.FederationExhausted != 2 {
		t.Fatalf("exhausted=%d, want 2", s.FederationExhausted)
	}
	if a.calls.Load() != 1 || b.calls.Load() != 1 {
		t.Fatalf("open breakers must refuse without attempts: a=%d b=%d", a.calls.Load(), b.calls.Load())
	}
}

// TestBreakerTransitionsUnderConcurrentFailover drives the full
// closed→open→half-open→closed cycle of a per-endpoint breaker while many
// goroutines fail over concurrently (run under -race): queries never fail
// while one mirror flaps, and the flapping mirror is re-admitted after its
// cooldown via a successful probe.
func TestBreakerTransitionsUnderConcurrentFailover(t *testing.T) {
	flappy := &countingCaller{name: "flappy"}
	flappy.fail.Store(true)
	steady := &countingCaller{name: "steady"}
	f, err := New([]Endpoint{
		{Name: "flappy", Caller: flappy, PriceFactor: 1},
		{Name: "steady", Caller: steady, PriceFactor: 2},
	}, Config{BreakerThreshold: 1, BreakerCooldown: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: hammer while the cheap mirror is down. Every query must
	// complete via the steady mirror; flappy's breaker trips along the way.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := f.Call(context.Background(), q("DS", "T")); err != nil {
					t.Errorf("call failed during flap: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if steady.calls.Load() != 200 {
		t.Fatalf("steady served %d, want all 200", steady.calls.Load())
	}
	for _, h := range f.Health() {
		if h.Name == "flappy" && h.Healthy {
			t.Fatal("flappy should report open circuits after the flap")
		}
	}

	// Phase 2: heal the mirror and wait out the cooldown; concurrent calls
	// race the half-open probe. Exactly one wins it, closes the circuit,
	// and the cheap mirror takes the traffic back.
	flappy.fail.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		time.Sleep(25 * time.Millisecond)
		var wg2 sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg2.Add(1)
			go func() {
				defer wg2.Done()
				if _, err := f.Call(context.Background(), q("DS", "T")); err != nil {
					t.Errorf("call failed during recovery: %v", err)
				}
			}()
		}
		wg2.Wait()
		healthy := false
		for _, h := range f.Health() {
			if h.Name == "flappy" {
				healthy = h.Healthy && h.ConsecutiveFailures == 0
			}
		}
		if healthy && flappy.calls.Load() > 3 { // served again beyond the trip attempts
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flappy never recovered: probe did not close the breaker")
		}
	}
}

func TestHedgeWinsWhenPrimaryIsSlow(t *testing.T) {
	m := obs.NewMetrics()
	slow := &countingCaller{name: "slow", block: make(chan struct{})}
	fast := &countingCaller{name: "fast"}
	f, err := New([]Endpoint{
		{Name: "slow", Caller: slow, PriceFactor: 1},
		{Name: "fast", Caller: fast, PriceFactor: 2},
	}, Config{HedgeAfter: 5 * time.Millisecond, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	rec := &obs.CallRecord{}
	ctx := obs.ContextWithCall(context.Background(), rec)
	res, err := f.Call(ctx, q("DS", "T"))
	if err != nil {
		t.Fatalf("hedge should have served the call: %v", err)
	}
	if res.Transactions != 1 {
		t.Fatalf("transactions=%d, want 1", res.Transactions)
	}
	if !rec.Hedged || !rec.HedgeWon || rec.Endpoint != "fast" {
		t.Fatalf("trace hedged=%v won=%v endpoint=%q, want true/true/fast",
			rec.Hedged, rec.HedgeWon, rec.Endpoint)
	}
	s := m.Snapshot()
	if s.FederationHedges != 1 || s.FederationHedgeWins != 1 {
		t.Fatalf("hedges=%d wins=%d, want 1/1", s.FederationHedges, s.FederationHedgeWins)
	}
	// The slow loser was cancelled, and both attempts carried one CallID.
	if id := slow.lastID(); id == "" || id != fast.lastID() {
		t.Fatalf("hedge CallIDs differ: %q vs %q", slow.lastID(), fast.lastID())
	}
}

func TestHedgeLosesWhenPrimaryAnswersFirst(t *testing.T) {
	m := obs.NewMetrics()
	primary := &countingCaller{name: "primary", block: make(chan struct{})}
	backup := &countingCaller{name: "backup", block: make(chan struct{})}
	f, err := New([]Endpoint{
		{Name: "primary", Caller: primary, PriceFactor: 1},
		{Name: "backup", Caller: backup, PriceFactor: 2},
	}, Config{HedgeAfter: time.Millisecond, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	// Release the primary once the hedge has certainly launched.
	go func() {
		for m.Snapshot().FederationHedges == 0 {
			time.Sleep(time.Millisecond)
		}
		close(primary.block)
	}()
	rec := &obs.CallRecord{}
	ctx := obs.ContextWithCall(context.Background(), rec)
	if _, err := f.Call(ctx, q("DS", "T")); err != nil {
		t.Fatal(err)
	}
	if !rec.Hedged || rec.HedgeWon || rec.Endpoint != "primary" {
		t.Fatalf("trace hedged=%v won=%v endpoint=%q, want true/false/primary",
			rec.Hedged, rec.HedgeWon, rec.Endpoint)
	}
	if s := m.Snapshot(); s.FederationHedgeWins != 0 {
		t.Fatalf("hedge wins=%d, want 0", s.FederationHedgeWins)
	}
}

func TestMirrorsRestrictEligibility(t *testing.T) {
	a := &countingCaller{name: "a"}
	b := &countingCaller{name: "b"}
	mirrors := map[string][]catalog.Mirror{
		"OnlyB": {{Endpoint: "b"}},
		// PricedDown flips the default order: endpoint b is half price there.
		"PricedDown": {{Endpoint: "a"}, {Endpoint: "b", PriceFactor: 0.5}},
	}
	f, err := New([]Endpoint{
		{Name: "a", Caller: a, PriceFactor: 1},
		{Name: "b", Caller: b, PriceFactor: 2},
	}, Config{Mirrors: func(table string) []catalog.Mirror { return mirrors[table] }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Call(context.Background(), q("DS", "OnlyB")); err != nil {
		t.Fatal(err)
	}
	if a.calls.Load() != 0 || b.calls.Load() != 1 {
		t.Fatalf("OnlyB routed a=%d b=%d, want 0/1", a.calls.Load(), b.calls.Load())
	}
	if _, err := f.Call(context.Background(), q("DS", "PricedDown")); err != nil {
		t.Fatal(err)
	}
	if b.calls.Load() != 2 {
		t.Fatalf("PricedDown should prefer the discounted mirror (b=%d, want 2)", b.calls.Load())
	}
	// A table with no mirror entries is served by any endpoint (cheapest).
	if _, err := f.Call(context.Background(), q("DS", "Unrestricted")); err != nil {
		t.Fatal(err)
	}
	if a.calls.Load() != 1 {
		t.Fatalf("unrestricted table should use the cheap default endpoint (a=%d)", a.calls.Load())
	}
}

func TestNoEligibleEndpointFails(t *testing.T) {
	a := &countingCaller{name: "a"}
	f, err := New([]Endpoint{{Name: "a", Caller: a}}, Config{
		Mirrors: func(table string) []catalog.Mirror {
			return []catalog.Mirror{{Endpoint: "elsewhere"}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Call(context.Background(), q("DS", "T")); err == nil {
		t.Fatal("want an error when no configured endpoint offers the table")
	}
}

func TestCancelAbortsPromptly(t *testing.T) {
	a := &countingCaller{name: "a", block: make(chan struct{})}
	b := &countingCaller{name: "b", block: make(chan struct{})}
	f, err := New([]Endpoint{
		{Name: "a", Caller: a},
		{Name: "b", Caller: b},
	}, Config{HedgeAfter: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := f.Call(ctx, q("DS", "T"))
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled federated call never returned")
	}
}

func TestNewValidation(t *testing.T) {
	a := &countingCaller{name: "a"}
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("want error for zero endpoints")
	}
	if _, err := New([]Endpoint{{Name: "", Caller: a}}, Config{}); err == nil {
		t.Fatal("want error for empty name")
	}
	if _, err := New([]Endpoint{{Name: "a", Caller: a}, {Name: "a", Caller: a}}, Config{}); err == nil {
		t.Fatal("want error for duplicate name")
	}
	if _, err := New([]Endpoint{{Name: "a"}}, Config{}); err == nil {
		t.Fatal("want error for missing transport")
	}
}
