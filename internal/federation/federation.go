// Package federation routes market calls across N mirrors of the same
// logical data market. Real cloud markets offer a dataset from several
// regions at different prices, latencies, and availability ("Joint Data
// Purchasing and Data Placement in a Geo-Distributed Data Market",
// PAPERS.md); the buyer's problem is source selection: buy each remainder
// box from the endpoint that minimizes expected cost, and keep queries
// completing when any one market degrades or partitions.
//
// The federated Caller sits between the global call scheduler and the
// per-endpoint transports (HTTP connectors or in-process markets):
//
//	engine → sched → federation.Caller → connector(endpoint 1..N)
//
// Per call it (a) ranks endpoints by a price+latency+health cost model,
// (b) fails over to the next-cheapest healthy endpoint on a hard error —
// with circuit breakers keyed endpoint×dataset, so one dead mirror never
// blacklists the dataset everywhere — and (c) optionally hedges a slow
// call by racing the next endpoint after HedgeAfter, cancelling the loser.
//
// Billing stays exactly-once per endpoint: the federation layer assigns the
// idempotent CallID once, above every retry and hedge, so a retry against
// the same endpoint replays from its ledger instead of re-billing. A hedge
// that loses against a *different* endpoint may still have billed there —
// that bounded loss is the "lost-call remainder" the chaos suite accounts
// for, and the buyer records exactly one result either way.
package federation

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"payless/internal/catalog"
	"payless/internal/engine"
	"payless/internal/market"
	"payless/internal/obs"
	"payless/internal/overload"
)

// Endpoint configures one market mirror.
type Endpoint struct {
	// Name identifies the endpoint in traces, metrics, health reports, and
	// catalog Mirror entries ("us-east"). Must be unique and non-empty.
	Name string
	// Caller is the endpoint's transport: an HTTP connector bound to the
	// mirror's base URL and account key, or an in-process market caller.
	Caller market.Caller
	// PriceFactor scales list price at this endpoint; <= 0 means 1.0.
	PriceFactor float64
	// LatencyHint seeds the cost model's latency term until observed
	// round-trips accumulate into the endpoint's EWMA.
	LatencyHint time.Duration
}

// Config tunes the federated caller.
type Config struct {
	// BreakerThreshold and BreakerCooldown configure the per-
	// endpoint×dataset circuit breakers; threshold <= 0 disables breaking.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HedgeAfter, when positive, races the next-ranked endpoint if the
	// chosen one has not answered within this duration. Zero disables
	// hedging.
	HedgeAfter time.Duration
	// Mirrors, when set, returns the catalog's mirror entries for a table:
	// a non-empty result restricts the call to the named endpoints and
	// overrides their price factors / latency hints for that table.
	Mirrors func(table string) []catalog.Mirror
	// Metrics receives the payless_federation_* counter families; nil is a
	// valid no-op sink.
	Metrics *obs.Metrics
}

// latencyUnit converts the cost model's latency term to a dimensionless
// penalty: an endpoint one latencyUnit slower costs as much extra as a 100%
// price markup. One second keeps price dominant for same-region mirrors
// (milliseconds apart) while letting latency break price ties and punish
// degraded mirrors (seconds apart).
const latencyUnit = time.Second

// ewmaAlpha is the weight of the newest observation in the latency EWMA
// (alpha = 1/4: new = (3*old + obs) / 4).
const ewmaAlpha = 4

// endpoint is the runtime state behind one configured Endpoint.
type endpoint struct {
	Endpoint

	mu       sync.Mutex
	ewma     time.Duration // observed round-trip EWMA; 0 until the first success
	calls    int64         // attempts issued (excluding breaker refusals)
	failures int64         // hard failures (context cancellations excluded)
	streak   int64         // consecutive hard failures, reset on success
}

// observe folds one attempt's outcome into the endpoint's health state.
func (e *endpoint) observe(lat time.Duration, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.calls++
	switch {
	case err == nil:
		e.streak = 0
		if e.ewma == 0 {
			e.ewma = lat
		} else {
			e.ewma = (time.Duration(ewmaAlpha-1)*e.ewma + lat) / ewmaAlpha
		}
	case isContextErr(err):
		// Cancelled by the caller or a lost hedge: no verdict on the mirror.
		e.calls--
	default:
		e.failures++
		e.streak++
	}
}

// latency returns the endpoint's effective latency for the cost model:
// observed EWMA when available, the static hint otherwise.
func (e *endpoint) latency() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.ewma > 0 {
		return e.ewma
	}
	return e.LatencyHint
}

// stats snapshots the endpoint's counters.
func (e *endpoint) stats() (calls, failures, streak int64, ewma time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls, e.failures, e.streak, e.ewma
}

// Caller is the federated market.Caller.
type Caller struct {
	cfg      Config
	breakers *engine.BreakerSet // keyed endpoint + "|" + dataset

	// mu guards eps for hot reload: UpdateEndpoints swaps the slice
	// wholesale (never mutates entries in place), so readers that copied
	// the header under RLock keep a consistent view for the whole call.
	mu  sync.RWMutex
	eps []*endpoint
}

// endpoints snapshots the current endpoint pool.
func (f *Caller) endpoints() []*endpoint {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.eps
}

// New builds a federated caller over the given endpoints. At least one
// endpoint with a non-nil transport and a unique non-empty name is required.
func New(eps []Endpoint, cfg Config) (*Caller, error) {
	if len(eps) == 0 {
		return nil, errors.New("federation: no endpoints configured")
	}
	seen := make(map[string]bool, len(eps))
	f := &Caller{cfg: cfg}
	for _, e := range eps {
		if e.Name == "" {
			return nil, errors.New("federation: endpoint with empty name")
		}
		if seen[e.Name] {
			return nil, fmt.Errorf("federation: duplicate endpoint %q", e.Name)
		}
		if e.Caller == nil {
			return nil, fmt.Errorf("federation: endpoint %q has no transport", e.Name)
		}
		seen[e.Name] = true
		if e.PriceFactor <= 0 {
			e.PriceFactor = 1
		}
		f.eps = append(f.eps, &endpoint{Endpoint: e})
	}
	f.breakers = engine.NewBreakerSet(cfg.BreakerThreshold, cfg.BreakerCooldown).
		WithMetrics(cfg.Metrics)
	return f, nil
}

// breakerKey qualifies the breaker by endpoint AND dataset: a dead mirror
// trips only its own breakers, never the dataset's standing at healthy
// mirrors (the PR 4 per-dataset breaker, migrated).
func breakerKey(endpointName, dataset string) string {
	return endpointName + "|" + dataset
}

// candidate is one rankable (endpoint, effective terms) pair for a call.
type candidate struct {
	ep    *endpoint
	score float64
}

// rank returns the call's eligible endpoints cheapest-first under the cost
// model
//
//	score = priceFactor × (1 + latency/latencyUnit) × (1 + failureStreak)
//
// where latency is the endpoint's observed EWMA (falling back to its static
// hint) and failureStreak is the run of consecutive hard failures — a
// flaky-but-not-yet-tripped mirror is deprioritized before its breaker ever
// opens. Catalog mirror entries restrict eligibility and override terms for
// the specific table.
func (f *Caller) rank(q catalog.AccessQuery) []candidate {
	var mirrors map[string]catalog.Mirror
	if f.cfg.Mirrors != nil {
		if ms := f.cfg.Mirrors(q.Table); len(ms) > 0 {
			mirrors = make(map[string]catalog.Mirror, len(ms))
			for _, m := range ms {
				mirrors[m.Endpoint] = m
			}
		}
	}
	eps := f.endpoints()
	cands := make([]candidate, 0, len(eps))
	for _, ep := range eps {
		factor := ep.PriceFactor
		lat := ep.latency()
		if mirrors != nil {
			m, ok := mirrors[ep.Name]
			if !ok {
				continue // table not offered at this endpoint
			}
			if m.PriceFactor > 0 {
				factor = m.PriceFactor
			}
			if m.LatencyHint > 0 && ep.observedEWMA() == 0 {
				lat = m.LatencyHint
			}
		}
		_, _, streak, _ := ep.stats()
		score := factor * (1 + lat.Seconds()/latencyUnit.Seconds()) * float64(1+streak)
		cands = append(cands, candidate{ep: ep, score: score})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score < cands[j].score })
	return cands
}

// observedEWMA returns the endpoint's observed latency EWMA (0 if none yet).
func (e *endpoint) observedEWMA() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.ewma
}

// attemptResult is one endpoint attempt's outcome.
type attemptResult struct {
	ep    *endpoint
	res   market.Result
	err   error
	hedge bool
}

// Call implements market.Caller: rank, try, fail over, optionally hedge.
func (f *Caller) Call(ctx context.Context, q catalog.AccessQuery) (market.Result, error) {
	// The idempotent CallID is assigned here, above every endpoint attempt:
	// retries and hedges all present the same logical call, so any single
	// endpoint bills it at most once (its replay ledger dedupes).
	if q.CallID == "" {
		// One fresh logical call = one deposit into the query's shared
		// retry budget; the connectors below see the ID already set and
		// never grant again.
		overload.Grant(ctx, overload.GrantPerCall)
	}
	market.EnsureCallID(&q)
	f.cfg.Metrics.ObserveFederationCall()

	ranked := f.rank(q)
	if len(ranked) == 0 {
		return market.Result{}, fmt.Errorf("federation: no endpoint offers table %s", q.Table)
	}

	// Attempts run under a child context so a decided race can cancel the
	// losers without touching the caller's ctx.
	actx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make(chan attemptResult, len(ranked)) // buffered: abandoned attempts never block
	var (
		next      int // index of the next candidate to launch
		inflight  int
		failovers int
		refused   int
		hedged    bool
		minRetry  time.Duration = -1
		lastErr   error
	)

	// launchNext starts the next endpoint whose breaker admits the call.
	// It reports whether an attempt was actually launched.
	launchNext := func(isHedge bool) bool {
		for next < len(ranked) {
			ep := ranked[next].ep
			next++
			release, berr := f.breakers.Acquire(breakerKey(ep.Name, q.Dataset))
			if berr != nil {
				refused++
				lastErr = fmt.Errorf("federation: endpoint %s: %w", ep.Name, berr)
				var coe *engine.CircuitOpenError
				if errors.As(berr, &coe) && coe.RetryAfter > 0 &&
					(minRetry < 0 || coe.RetryAfter < minRetry) {
					minRetry = coe.RetryAfter
				}
				continue
			}
			inflight++
			go func() {
				start := time.Now()
				res, err := ep.Caller.Call(actx, q)
				ep.observe(time.Since(start), err)
				release(err)
				results <- attemptResult{ep: ep, res: res, err: err, hedge: isHedge}
			}()
			return true
		}
		return false
	}

	if !launchNext(false) {
		// Every endpoint refused up front: all breakers open.
		return market.Result{}, f.exhausted(q, len(ranked), refused, minRetry, lastErr)
	}

	// A hedge that cannot fire before the caller's deadline is never armed:
	// hedging exists to cut tail latency the caller will still experience.
	var hedgeC <-chan time.Time
	if f.cfg.HedgeAfter > 0 && len(ranked) > 1 && !overload.ShortOf(ctx, f.cfg.HedgeAfter) {
		t := time.NewTimer(f.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	for {
		select {
		case <-ctx.Done():
			// Caller gave up: in-flight attempts see actx cancelled (their
			// breakers record no verdict) and drain into the buffer.
			return market.Result{}, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			// A hedge is speculation, not necessity: when the shared retry
			// budget is empty it is skipped silently and the primary
			// attempt keeps running alone.
			if overload.Spend(ctx, 1) && launchNext(true) {
				hedged = true
				f.cfg.Metrics.ObserveFederationHedge()
			}
		case r := <-results:
			inflight--
			if r.err == nil {
				cancel() // the losing hedge is abandoned; any bill it landed is the lost-call remainder
				if r.hedge {
					f.cfg.Metrics.ObserveFederationHedgeWin()
				}
				obs.CallFromContext(ctx).SetFederation(r.ep.Name, failovers, hedged, r.hedge)
				return r.res, nil
			}
			if ctx.Err() != nil {
				return market.Result{}, ctx.Err()
			}
			if isContextErr(r.err) {
				// The attempt lost a decided race or inherited a cancel;
				// with the parent ctx alive, the race must still be decided
				// by the remaining attempt (if any).
				if inflight > 0 {
					continue
				}
				return market.Result{}, r.err
			}
			lastErr = fmt.Errorf("federation: endpoint %s: %w", r.ep.Name, r.err)
			failovers++
			f.cfg.Metrics.ObserveFederationFailover()
			// Fail over only when nothing else is racing: with a hedge in
			// flight, the hedge already is the next endpoint. A failover is
			// an extra attempt like any other — it must be funded by the
			// query's retry budget, or layered retries multiply.
			if inflight == 0 {
				if !overload.Spend(ctx, 1) {
					return market.Result{}, fmt.Errorf("federation: not failing over for %s.%s: %w (last error: %v)",
						q.Dataset, q.Table, overload.ErrRetryBudget, lastErr)
				}
				if !launchNext(false) {
					return market.Result{}, f.exhausted(q, len(ranked), refused, minRetry, lastErr)
				}
			}
		}
	}
}

// exhausted builds the terminal error once every eligible endpoint refused
// or failed. When breakers refused them all, the error carries the soonest
// re-probe time and matches errors.Is(err, engine.ErrCircuitOpen) so
// user-facing transports can answer 503 + Retry-After.
func (f *Caller) exhausted(q catalog.AccessQuery, total, refused int, minRetry time.Duration, lastErr error) error {
	f.cfg.Metrics.ObserveFederationExhausted()
	if refused == total {
		if minRetry < 0 {
			minRetry = 0
		}
		return fmt.Errorf("federation: all %d endpoints for dataset %s refused: %w",
			total, q.Dataset, &engine.CircuitOpenError{RetryAfter: minRetry})
	}
	if lastErr == nil {
		lastErr = errors.New("no endpoint available")
	}
	return fmt.Errorf("federation: all %d endpoints failed for %s.%s: %w",
		total, q.Dataset, q.Table, lastErr)
}

// isContextErr reports whether err is a context cancellation/deadline, at
// any wrap depth.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// EndpointHealth is a point-in-time view of one endpoint, surfaced by the
// daemon's /healthz and the client's FederationHealth.
type EndpointHealth struct {
	Name string `json:"name"`
	// Healthy means no circuit on this endpoint is currently open.
	Healthy bool `json:"healthy"`
	// Calls and Failures count attempts issued to the endpoint and the hard
	// failures among them; ConsecutiveFailures is the current streak.
	Calls               int64 `json:"calls"`
	Failures            int64 `json:"failures"`
	ConsecutiveFailures int64 `json:"consecutive_failures"`
	// EWMALatencyMillis is the observed round-trip EWMA (0 until the first
	// success).
	EWMALatencyMillis int64 `json:"ewma_latency_ms"`
	// OpenCircuits counts this endpoint's datasets with an open breaker;
	// RetryInMillis is the soonest re-probe among them.
	OpenCircuits  int   `json:"open_circuits"`
	RetryInMillis int64 `json:"retry_in_ms,omitempty"`
}

// UpdateEndpoints hot-swaps the endpoint pool without dropping in-flight
// calls: attempts already racing keep their endpoint handles (their
// outcomes settle into the old state structs and drain normally), while
// every later rank() sees the new pool. Endpoints surviving the swap by
// name keep their observed health — latency EWMA, failure counters,
// streak — so a reload never resets source selection to cold hints.
// Validation mirrors New; on error the pool is left untouched. Breakers
// keyed to removed endpoints linger unused until the set is next tripped.
func (f *Caller) UpdateEndpoints(eps []Endpoint) error {
	if len(eps) == 0 {
		return errors.New("federation: no endpoints configured")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	old := make(map[string]*endpoint, len(f.eps))
	for _, e := range f.eps {
		old[e.Name] = e
	}
	seen := make(map[string]bool, len(eps))
	built := make([]*endpoint, 0, len(eps))
	for _, e := range eps {
		if e.Name == "" {
			return errors.New("federation: endpoint with empty name")
		}
		if seen[e.Name] {
			return fmt.Errorf("federation: duplicate endpoint %q", e.Name)
		}
		if e.Caller == nil {
			return fmt.Errorf("federation: endpoint %q has no transport", e.Name)
		}
		seen[e.Name] = true
		if e.PriceFactor <= 0 {
			e.PriceFactor = 1
		}
		ne := &endpoint{Endpoint: e}
		if prev, ok := old[e.Name]; ok {
			prev.mu.Lock()
			ne.ewma, ne.calls, ne.failures, ne.streak = prev.ewma, prev.calls, prev.failures, prev.streak
			prev.mu.Unlock()
		}
		built = append(built, ne)
	}
	f.eps = built
	return nil
}

// Names lists the current endpoint pool's names in configuration order.
func (f *Caller) Names() []string {
	eps := f.endpoints()
	out := make([]string, 0, len(eps))
	for _, ep := range eps {
		out = append(out, ep.Name)
	}
	return out
}

// Health reports every endpoint's state, in configuration order.
func (f *Caller) Health() []EndpointHealth {
	states := f.breakers.States()
	eps := f.endpoints()
	out := make([]EndpointHealth, 0, len(eps))
	for _, ep := range eps {
		calls, failures, streak, ewma := ep.stats()
		h := EndpointHealth{
			Name:                ep.Name,
			Healthy:             true,
			Calls:               calls,
			Failures:            failures,
			ConsecutiveFailures: streak,
			EWMALatencyMillis:   ewma.Milliseconds(),
		}
		prefix := ep.Name + "|"
		for key, st := range states {
			if len(key) <= len(prefix) || key[:len(prefix)] != prefix {
				continue
			}
			if st.State == "open" || st.State == "half-open" {
				h.OpenCircuits++
				h.Healthy = false
				if ms := st.RetryIn.Milliseconds(); h.RetryInMillis == 0 || (ms > 0 && ms < h.RetryInMillis) {
					h.RetryInMillis = ms
				}
			}
		}
		out = append(out, h)
	}
	return out
}
