package federation

import (
	"context"
	"errors"
	"testing"
	"time"

	"payless/internal/overload"
)

func TestRetryBudgetBoundsFailovers(t *testing.T) {
	a := &countingCaller{name: "a"}
	b := &countingCaller{name: "b"}
	c := &countingCaller{name: "c"}
	a.fail.Store(true)
	b.fail.Store(true)
	c.fail.Store(true)
	f, err := New([]Endpoint{
		{Name: "a", Caller: a, PriceFactor: 1},
		{Name: "b", Caller: b, PriceFactor: 2},
		{Name: "c", Caller: c, PriceFactor: 3},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}

	// One token: the primary attempt is free, one failover is funded, the
	// second is denied with ErrRetryBudget — endpoint c is never tried.
	ctx := overload.WithBudget(context.Background(), overload.NewRetryBudget(1))
	_, cerr := f.Call(ctx, q("DS", "T"))
	if !errors.Is(cerr, overload.ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", cerr)
	}
	if a.calls.Load() != 1 || b.calls.Load() != 1 || c.calls.Load() != 0 {
		t.Fatalf("calls a=%d b=%d c=%d, want 1 1 0", a.calls.Load(), b.calls.Load(), c.calls.Load())
	}

	// Without a budget every endpoint is tried before the call fails.
	_, cerr = f.Call(context.Background(), q("DS", "T"))
	if cerr == nil || errors.Is(cerr, overload.ErrRetryBudget) {
		t.Fatalf("budget-free call should exhaust endpoints, got %v", cerr)
	}
	if c.calls.Load() != 1 {
		t.Fatalf("endpoint c calls = %d, want 1 without a budget", c.calls.Load())
	}
}

func TestHedgeSkippedSilentlyOnEmptyBudget(t *testing.T) {
	slow := &countingCaller{name: "slow", block: make(chan struct{})}
	backup := &countingCaller{name: "backup"}
	f, err := New([]Endpoint{
		{Name: "slow", Caller: slow, PriceFactor: 1},
		{Name: "backup", Caller: backup, PriceFactor: 2},
	}, Config{HedgeAfter: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	ctx := overload.WithBudget(context.Background(), overload.NewRetryBudget(0))
	done := make(chan error, 1)
	go func() {
		_, cerr := f.Call(ctx, q("DS", "T"))
		done <- cerr
	}()
	// Give the hedge timer ample time to fire, then release the primary.
	time.Sleep(60 * time.Millisecond)
	close(slow.block)
	if cerr := <-done; cerr != nil {
		t.Fatalf("call must succeed through the primary: %v", cerr)
	}
	if backup.calls.Load() != 0 {
		t.Fatalf("hedge launched %d times on an empty budget, want 0", backup.calls.Load())
	}
}

func TestHedgeNotArmedInsideShortDeadline(t *testing.T) {
	slow := &countingCaller{name: "slow", block: make(chan struct{})}
	backup := &countingCaller{name: "backup"}
	f, err := New([]Endpoint{
		{Name: "slow", Caller: slow, PriceFactor: 1},
		{Name: "backup", Caller: backup, PriceFactor: 2},
	}, Config{HedgeAfter: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, cerr := f.Call(ctx, q("DS", "T"))
	if !errors.Is(cerr, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", cerr)
	}
	if backup.calls.Load() != 0 {
		t.Fatalf("a hedge that cannot fire before the deadline must not launch")
	}
	close(slow.block)
}

func TestUpdateEndpointsPreservesObservedState(t *testing.T) {
	a := &countingCaller{name: "a"}
	b := &countingCaller{name: "b"}
	f, err := New([]Endpoint{
		{Name: "a", Caller: a, PriceFactor: 1},
	}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Accumulate observed latency state on "a".
	for i := 0; i < 3; i++ {
		if _, cerr := f.Call(context.Background(), q("DS", "T")); cerr != nil {
			t.Fatal(cerr)
		}
	}
	before := f.Health()[0]
	if before.Calls != 3 {
		t.Fatalf("warm-up calls = %d, want 3", before.Calls)
	}

	// Hot-add "b" and keep "a": a's counters must survive the swap.
	if err := f.UpdateEndpoints([]Endpoint{
		{Name: "a", Caller: a, PriceFactor: 1},
		{Name: "b", Caller: b, PriceFactor: 2},
	}); err != nil {
		t.Fatal(err)
	}
	h := f.Health()
	if len(h) != 2 {
		t.Fatalf("health entries = %d, want 2", len(h))
	}
	if h[0].Name != "a" || h[0].Calls != 3 {
		t.Fatalf("endpoint a lost its observed state across the swap: %+v", h[0])
	}
	if got := f.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names() = %v, want [a b]", got)
	}

	// Remove "a": calls now route to "b" only.
	if err := f.UpdateEndpoints([]Endpoint{{Name: "b", Caller: b, PriceFactor: 2}}); err != nil {
		t.Fatal(err)
	}
	if _, cerr := f.Call(context.Background(), q("DS", "T")); cerr != nil {
		t.Fatal(cerr)
	}
	if b.calls.Load() != 1 || a.calls.Load() != 3 {
		t.Fatalf("calls a=%d b=%d after removal, want 3 1", a.calls.Load(), b.calls.Load())
	}
}

func TestUpdateEndpointsValidation(t *testing.T) {
	a := &countingCaller{name: "a"}
	f, err := New([]Endpoint{{Name: "a", Caller: a}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]Endpoint{
		nil,
		{{Name: "", Caller: a}},
		{{Name: "x", Caller: nil}},
		{{Name: "x", Caller: a}, {Name: "x", Caller: a}},
	}
	for i, eps := range cases {
		if err := f.UpdateEndpoints(eps); err == nil {
			t.Fatalf("case %d: invalid endpoint set accepted", i)
		}
	}
	// The failed updates must leave the pool untouched.
	if got := f.Names(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("pool after failed updates = %v, want [a]", got)
	}
}

func TestUpdateEndpointsDuringInflightCalls(t *testing.T) {
	a := &countingCaller{name: "a", block: make(chan struct{})}
	b := &countingCaller{name: "b"}
	f, err := New([]Endpoint{{Name: "a", Caller: a, PriceFactor: 1}}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, cerr := f.Call(context.Background(), q("DS", "T"))
		done <- cerr
	}()
	time.Sleep(10 * time.Millisecond) // let the attempt park on a.block
	if err := f.UpdateEndpoints([]Endpoint{{Name: "b", Caller: b, PriceFactor: 1}}); err != nil {
		t.Fatal(err)
	}
	close(a.block) // release the in-flight attempt against the removed endpoint
	if cerr := <-done; cerr != nil {
		t.Fatalf("in-flight call must complete across the swap: %v", cerr)
	}
}
