package connector

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"payless/internal/catalog"
	"payless/internal/market"
	"payless/internal/value"
)

func newMarket(t *testing.T) *market.Market {
	t.Helper()
	m := market.New()
	ds, err := m.AddDataset("WHW", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	meta := &catalog.Table{
		Name: "Station",
		Schema: value.Schema{
			{Name: "Country", Type: value.String},
			{Name: "StationID", Type: value.Int},
		},
		Attrs: []catalog.Attribute{
			{Name: "Country", Type: value.String, Binding: catalog.Free, Class: catalog.CategoricalAttr,
				Domain: []value.Value{value.NewString("Canada"), value.NewString("United States")}},
			{Name: "StationID", Type: value.Int, Binding: catalog.Free, Class: catalog.NumericAttr, Min: 1, Max: 100},
		},
	}
	var rows []value.Row
	for i := 1; i <= 150; i++ {
		country := "United States"
		if i%3 == 0 {
			country = "Canada"
		}
		rows = append(rows, value.Row{value.NewString(country), value.NewInt(int64(i%100 + 1))})
	}
	if err := ds.AddTable(meta, rows); err != nil {
		t.Fatal(err)
	}
	m.RegisterAccount("k")
	return m
}

func TestClientCatalogAndCall(t *testing.T) {
	m := newMarket(t)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	c := New(srv.URL, "k", WithHTTPClient(srv.Client()))
	tables, err := c.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].Name != "Station" || tables[0].Cardinality != 150 {
		t.Fatalf("catalog: %+v", tables)
	}

	res, err := c.Call(context.Background(), catalog.AccessQuery{Dataset: "WHW", Table: "Station"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 150 || res.Transactions != 2 {
		t.Errorf("whole table: %d records, %d trans", res.Records, res.Transactions)
	}

	ca := value.NewString("Canada")
	res2, err := c.Call(context.Background(), catalog.AccessQuery{Dataset: "WHW", Table: "Station", Preds: []catalog.Pred{
		{Attr: "Country", Eq: &ca},
		{Attr: "StationID", Lo: catalog.IntPtr(1), Hi: catalog.IntPtr(50)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Records == 0 || res2.Records >= 150 {
		t.Errorf("filtered call records: %d", res2.Records)
	}
	for _, r := range res2.Rows {
		if r[0].S != "Canada" || r[1].I > 50 {
			t.Errorf("row violates predicate: %v", r)
		}
	}

	meter, err := c.Meter()
	if err != nil {
		t.Fatal(err)
	}
	if meter.Calls != 2 {
		t.Errorf("meter: %+v", meter)
	}
}

func TestClientDatasetlessCall(t *testing.T) {
	m := newMarket(t)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	c := New(srv.URL, "k")
	res, err := c.Call(context.Background(), catalog.AccessQuery{Table: "Station"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 150 {
		t.Errorf("records: %d", res.Records)
	}
}

func TestClientTuplesPerTransaction(t *testing.T) {
	m := newMarket(t)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()
	c := New(srv.URL, "k")
	tpt, err := c.TuplesPerTransaction("WHW")
	if err != nil || tpt != 100 {
		t.Errorf("tpt: %d %v", tpt, err)
	}
	if _, err := c.TuplesPerTransaction("Ghost"); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestClientServerErrors(t *testing.T) {
	m := newMarket(t)
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	bad := New(srv.URL, "wrong-key")
	if _, err := bad.Catalog(); err == nil {
		t.Error("bad key should error")
	}
	c := New(srv.URL, "k")
	if _, err := c.Call(context.Background(), catalog.AccessQuery{Table: "Ghost"}); err == nil {
		t.Error("unknown table should error")
	}
}

func TestClientRetriesTransportErrors(t *testing.T) {
	attempts := 0
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts == 1 {
			// Kill the connection to force a transport error.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("no hijacker")
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"Calls":0,"Records":0,"Transactions":0,"Price":0}`))
	}))
	defer flaky.Close()

	c := New(flaky.URL, "k", WithRetries(2))
	if _, err := c.Meter(); err != nil {
		t.Errorf("retry should recover: %v", err)
	}
	if attempts != 2 {
		t.Errorf("attempts: %d", attempts)
	}
}

func TestClientUnreachable(t *testing.T) {
	c := New("http://127.0.0.1:1", "k", WithRetries(0))
	if _, err := c.Meter(); err == nil {
		t.Error("unreachable server should error")
	}
}

func TestClientPagination(t *testing.T) {
	// Publish a table larger than one transport page so Call must follow
	// NextPage links.
	m := market.New()
	ds, _ := m.AddDataset("BIG", 100, 1)
	meta := &catalog.Table{
		Name:   "Big",
		Schema: value.Schema{{Name: "K", Type: value.Int}},
		Attrs: []catalog.Attribute{
			{Name: "K", Type: value.Int, Binding: catalog.Free, Class: catalog.NumericAttr, Min: 1, Max: 20000},
		},
	}
	var rows []value.Row
	for i := 1; i <= market.PageRows+123; i++ {
		rows = append(rows, value.Row{value.NewInt(int64(i))})
	}
	if err := ds.AddTable(meta, rows); err != nil {
		t.Fatal(err)
	}
	m.RegisterAccount("k")
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	c := New(srv.URL, "k")
	res, err := c.Call(context.Background(), catalog.AccessQuery{Dataset: "BIG", Table: "Big"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != market.PageRows+123 {
		t.Fatalf("paged rows: %d, want %d", len(res.Rows), market.PageRows+123)
	}
	// Billing happened once (on page 0), covering all records.
	meter, _ := m.MeterOf("k")
	wantTrans := int64((market.PageRows + 123 + 99) / 100)
	if meter.Transactions != wantTrans {
		t.Errorf("paging must bill exactly once: %d, want %d", meter.Transactions, wantTrans)
	}
	// All keys present exactly once.
	seen := make(map[int64]bool)
	for _, r := range res.Rows {
		if seen[r[0].I] {
			t.Fatalf("duplicate key %d across pages", r[0].I)
		}
		seen[r[0].I] = true
	}
}
