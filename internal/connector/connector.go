// Package connector is PayLess's data-market connector (paper §3, step 5):
// an HTTP client that registers with a market server, exports its public
// catalog, and issues RESTful data calls carrying the buyer's authentication
// key. It implements the unified context-first market.Caller, so the
// execution engine is oblivious to whether the market is remote (this
// client) or in-process, and its parallel fetch pipeline can cancel
// in-flight calls.
//
// Every attempt runs under a per-call deadline derived from the caller's
// context. Transport failures, per-attempt timeouts, truncated or
// undecodable response bodies and retryable HTTP statuses (5xx, 429) are
// retried with exponential backoff plus jitter — a 429/503 carrying a
// Retry-After header is honoured instead, capped by the backoff maximum.
// Permanent HTTP 4xx responses fail fast: a malformed call must never be
// re-issued, since every accepted call costs money.
//
// Retrying a data call is safe because every logical call carries a unique
// idempotency ID (the X-Call-Id header), assigned once above the retry
// loop. The market bills an ID at most once and replays the billed result
// on retry, so even the worst failure — the connection dropping after the
// server billed but before the response arrived — never double-charges.
//
// Retries are additionally bounded by the query's shared overload budget:
// each fresh logical call deposits credit, each extra attempt here (and
// each federation failover or hedge above) withdraws it, and an exhausted
// budget fails the call with overload.ErrRetryBudget instead of piling on.
// A retry wait that would outlast the caller's deadline is not slept at
// all — the call returns context.DeadlineExceeded immediately, because a
// backoff the caller will never see the end of is pure queueing.
package connector

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"payless/internal/catalog"
	"payless/internal/market"
	"payless/internal/obs"
	"payless/internal/overload"
)

// StatusError is a non-2xx HTTP response from the market. Permanent client
// errors (4xx other than 429) are returned as soon as they are observed,
// without burning retry attempts.
type StatusError struct {
	Code int
	Msg  string
	// RetryAfter is the server's requested wait before retrying (from the
	// Retry-After header on 429/503 responses); 0 when absent.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("market: %s (HTTP %d)", e.Msg, e.Code)
	}
	return fmt.Sprintf("market: HTTP %d", e.Code)
}

// Permanent reports whether the status must not be retried.
func (e *StatusError) Permanent() bool {
	return e.Code >= 400 && e.Code < 500 && e.Code != http.StatusTooManyRequests
}

// Client talks to one market server on behalf of one account. It is safe
// for concurrent use by the engine's parallel fetch pipeline.
type Client struct {
	baseURL string
	key     string
	http    *http.Client
	// retries is the number of extra attempts on retryable errors.
	retries int
	// perCallTimeout bounds each individual HTTP attempt. The zero value is
	// explicit: 0 means "no per-attempt deadline — each attempt is bounded
	// only by the caller's context", it is never silently replaced by the
	// default. New installs DefaultPerCallTimeout; WithPerCallTimeout(0)
	// opts out deliberately. Before the caller interface was unified, the
	// background-context Call wrapper combined with perCallTimeout == 0
	// produced attempts with no deadline at all; with the context-first
	// entry the caller's context always travels into every attempt, so an
	// explicit 0 degrades to "caller-bounded" instead of "unbounded".
	perCallTimeout time.Duration
	// backoffBase and backoffMax shape the exponential backoff between
	// attempts: base<<attempt capped at max, then jittered to 50–100%.
	backoffBase time.Duration
	backoffMax  time.Duration
	// noCallIDs disables per-call idempotency IDs; retried calls may then
	// be billed again by the market (the pre-ledger behaviour, kept for the
	// fault-overhead ablation).
	noCallIDs bool
	// sleep waits between attempts; replaced in tests.
	sleep func(ctx context.Context, d time.Duration) error
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithRetries sets the number of extra attempts on retryable errors.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// DefaultPerCallTimeout is the per-attempt deadline New installs when
// WithPerCallTimeout is not given.
const DefaultPerCallTimeout = 30 * time.Second

// WithPerCallTimeout bounds each HTTP attempt. d == 0 explicitly disables
// the per-attempt deadline: each attempt is then bounded only by the
// caller's context (pass a context with a deadline, or accept that a stuck
// attempt lives as long as the query). Negative values are treated as 0.
func WithPerCallTimeout(d time.Duration) Option {
	return func(c *Client) {
		if d < 0 {
			d = 0
		}
		c.perCallTimeout = d
	}
}

// WithBackoff sets the exponential backoff shape between retry attempts.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoffBase = base; c.backoffMax = max }
}

// WithoutCallIDs disables the per-call idempotency IDs, so a retried call
// may be billed again. Only the fault-overhead ablation wants this; leave
// IDs on everywhere else.
func WithoutCallIDs() Option {
	return func(c *Client) { c.noCallIDs = true }
}

// New returns a client for the market at baseURL authenticating with key.
func New(baseURL, key string, opts ...Option) *Client {
	c := &Client{
		baseURL:        baseURL,
		key:            key,
		http:           &http.Client{},
		retries:        2,
		perCallTimeout: DefaultPerCallTimeout,
		backoffBase:    100 * time.Millisecond,
		backoffMax:     2 * time.Second,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// backoffDelay returns the jittered wait before retry attempt n (n >= 1).
func (c *Client) backoffDelay(attempt int) time.Duration {
	d := c.backoffBase
	for i := 1; i < attempt && d < c.backoffMax; i++ {
		d *= 2
	}
	if d > c.backoffMax {
		d = c.backoffMax
	}
	if d <= 0 {
		return 0
	}
	// Jitter into [d/2, d) so synchronized workers don't retry in lockstep.
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// get fetches one path with retries. Retryable failures (transport errors,
// per-attempt timeouts, undecodable bodies, HTTP 5xx/429) back off
// exponentially — unless the response named a Retry-After, which is honoured
// capped at backoffMax; permanent 4xx responses and parent-context
// cancellation return immediately. callID, when non-empty, travels as the
// X-Call-Id idempotency header on every attempt.
func (c *Client) get(ctx context.Context, path, callID string, out any) error {
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			delay := c.backoffDelay(attempt)
			if retryAfter > 0 {
				// The server told us when to come back; trust it over our
				// own schedule, but never wait longer than backoffMax.
				delay = retryAfter
				if delay > c.backoffMax {
					delay = c.backoffMax
				}
				retryAfter = 0
			}
			// Deadline propagation: a backoff the caller's deadline cannot
			// survive is never slept — fail now with the deadline error the
			// query was about to hit anyway.
			if overload.ShortOf(ctx, delay) {
				rem, _ := overload.Remaining(ctx)
				return fmt.Errorf("market: abandoning retry after %d attempts: %v backoff exceeds the %v left of the caller's deadline: %w (last error: %v)",
					attempt, delay, rem.Round(time.Millisecond), context.DeadlineExceeded, lastErr)
			}
			// Retry budget: every extra attempt, at any layer, withdraws one
			// token from the query's shared pool.
			if !overload.Spend(ctx, 1) {
				return fmt.Errorf("market: giving up after %d attempts: %w (last error: %v)",
					attempt, overload.ErrRetryBudget, lastErr)
			}
			// Annotate the in-flight call's trace record (if the engine
			// attached one) before the backoff sleep.
			obs.CallFromContext(ctx).AddRetry()
			if err := c.waitRetry(ctx, delay); err != nil {
				return fmt.Errorf("market call aborted after %d attempts: %w (last error: %v)", attempt, err, lastErr)
			}
		}
		body, code, hdr, err := c.attempt(ctx, path, callID)
		if err != nil {
			if ctx.Err() != nil {
				// The caller's context expired or was cancelled: the engine
				// is tearing the fan-out down, don't keep hammering.
				return ctx.Err()
			}
			lastErr = err
			continue
		}
		if code != http.StatusOK {
			se := &StatusError{Code: code, RetryAfter: parseRetryAfter(hdr)}
			var we market.WireError
			if json.Unmarshal(body, &we) == nil && we.Error != "" {
				se.Msg = we.Error
			}
			if se.Permanent() {
				return se
			}
			retryAfter = se.RetryAfter
			lastErr = se
			continue
		}
		if err := json.Unmarshal(body, out); err != nil {
			// A 200 with an undecodable body is a corrupted or truncated
			// response, not a server verdict: retry it like a transport
			// error. The idempotency ID makes the retry billing-safe.
			lastErr = fmt.Errorf("malformed market response: %w", err)
			continue
		}
		return nil
	}
	return fmt.Errorf("market unreachable after %d attempts: %w", c.retries+1, lastErr)
}

// waitRetry waits out one backoff or Retry-After delay, aborting promptly
// the moment the caller's context is cancelled: a retry wait must never
// outlive the query that wanted the retry. The sleep is raced against
// ctx.Done() so the guarantee holds even when an injected sleep (tests,
// fake clocks) ignores the context it is handed.
func (c *Client) waitRetry(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	done := make(chan error, 1)
	go func() { done <- c.sleep(ctx, d) }()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case err := <-done:
		return err
	}
}

// parseRetryAfter reads a Retry-After header: delay-seconds or an HTTP-date.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// attempt performs one HTTP round-trip under the per-call deadline.
func (c *Client) attempt(ctx context.Context, path, callID string) ([]byte, int, http.Header, error) {
	actx := ctx
	cancel := func() {}
	if c.perCallTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, c.perCallTimeout)
	}
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return nil, 0, nil, err
	}
	req.Header.Set(market.AuthHeader, c.key)
	if callID != "" {
		req.Header.Set(market.CallIDHeader, callID)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, nil, err
	}
	return body, resp.StatusCode, resp.Header, nil
}

// Catalog fetches the market's public table metadata — the registration
// step of paper Fig. 2.
func (c *Client) Catalog() ([]*catalog.Table, error) {
	return c.CatalogContext(context.Background())
}

// CatalogContext is Catalog under a caller-supplied context.
func (c *Client) CatalogContext(ctx context.Context) ([]*catalog.Table, error) {
	var wire []market.WireTable
	if err := c.get(ctx, "/v1/catalog", "", &wire); err != nil {
		return nil, err
	}
	out := make([]*catalog.Table, 0, len(wire))
	for _, wt := range wire {
		t, err := market.TableOfWire(wt)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// TuplesPerTransaction fetches the page size t of the named dataset.
func (c *Client) TuplesPerTransaction(dataset string) (int, error) {
	return c.TuplesPerTransactionContext(context.Background(), dataset)
}

// TuplesPerTransactionContext is TuplesPerTransaction under a
// caller-supplied context: cancellation aborts in-flight attempts and any
// pending retry wait.
func (c *Client) TuplesPerTransactionContext(ctx context.Context, dataset string) (int, error) {
	var wire []market.WireTable
	if err := c.get(ctx, "/v1/catalog", "", &wire); err != nil {
		return 0, err
	}
	for _, wt := range wire {
		if wt.Dataset == dataset {
			return wt.TuplesPerTransaction, nil
		}
	}
	return 0, fmt.Errorf("unknown dataset %s", dataset)
}

// Meter fetches the account's current spending.
func (c *Client) Meter() (market.Meter, error) {
	return c.MeterContext(context.Background())
}

// MeterContext is Meter under a caller-supplied context.
func (c *Client) MeterContext(ctx context.Context) (market.Meter, error) {
	var m market.Meter
	err := c.get(ctx, "/v1/meter", "", &m)
	return m, err
}

// Call executes one RESTful data call under ctx. It implements the unified
// market.Caller: cancelling ctx aborts the in-flight request and any
// remaining result pages.
func (c *Client) Call(ctx context.Context, q catalog.AccessQuery) (market.Result, error) {
	if q.CallID == "" {
		// A fresh logical call funds the query's shared retry budget; a
		// call arriving with an ID was already granted at the layer that
		// assigned it (the federation fan-out).
		overload.Grant(ctx, overload.GrantPerCall)
	}
	if !c.noCallIDs {
		// One idempotency ID per logical call, shared by every retry of
		// every page: the market bills it once and replays thereafter.
		market.EnsureCallID(&q)
	}
	params := url.Values{}
	for _, p := range q.Preds {
		switch {
		case p.Eq != nil:
			params.Set(p.Attr, p.Eq.String())
		default:
			if p.Lo != nil {
				params.Set(p.Attr+".gte", strconv.FormatInt(*p.Lo, 10))
			}
			if p.Hi != nil {
				params.Set(p.Attr+".lte", strconv.FormatInt(*p.Hi, 10))
			}
		}
	}
	ds := q.Dataset
	if ds == "" {
		ds = "-" // the server resolves "-" by unique table name
	}
	base := "/v1/data/" + url.PathEscape(ds) + "/" + url.PathEscape(q.Table)
	var combined market.WireResult
	page := 0
	for {
		params.Set("page", strconv.Itoa(page))
		path := base + "?" + params.Encode()
		var wr market.WireResult
		if err := c.get(ctx, path, q.CallID, &wr); err != nil {
			return market.Result{}, err
		}
		if page == 0 {
			combined = wr
		} else {
			combined.Rows = append(combined.Rows, wr.Rows...)
		}
		if wr.NextPage == 0 {
			break
		}
		page = wr.NextPage
	}
	combined.NextPage = 0
	return market.ResultOfWire(combined)
}
