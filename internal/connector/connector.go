// Package connector is PayLess's data-market connector (paper §3, step 5):
// an HTTP client that registers with a market server, exports its public
// catalog, and issues RESTful data calls carrying the buyer's authentication
// key. It implements market.Caller, so the execution engine is oblivious to
// whether the market is remote (this client) or in-process.
package connector

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"payless/internal/catalog"
	"payless/internal/market"
)

// Client talks to one market server on behalf of one account.
type Client struct {
	baseURL string
	key     string
	http    *http.Client
	// retries is the number of extra attempts on transport errors.
	retries int
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying http.Client.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithRetries sets the number of extra attempts on transport errors.
func WithRetries(n int) Option {
	return func(c *Client) { c.retries = n }
}

// New returns a client for the market at baseURL authenticating with key.
func New(baseURL, key string, opts ...Option) *Client {
	c := &Client{
		baseURL: baseURL,
		key:     key,
		http:    &http.Client{Timeout: 30 * time.Second},
		retries: 2,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) get(path string, out any) error {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		req, err := http.NewRequest(http.MethodGet, c.baseURL+path, nil)
		if err != nil {
			return err
		}
		req.Header.Set(market.AuthHeader, c.key)
		resp, err := c.http.Do(req)
		if err != nil {
			lastErr = err
			continue // transport error: retry
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var we market.WireError
			if json.Unmarshal(body, &we) == nil && we.Error != "" {
				return fmt.Errorf("market: %s (HTTP %d)", we.Error, resp.StatusCode)
			}
			return fmt.Errorf("market: HTTP %d", resp.StatusCode)
		}
		return json.Unmarshal(body, out)
	}
	return fmt.Errorf("market unreachable after %d attempts: %w", c.retries+1, lastErr)
}

// Catalog fetches the market's public table metadata — the registration
// step of paper Fig. 2.
func (c *Client) Catalog() ([]*catalog.Table, error) {
	var wire []market.WireTable
	if err := c.get("/v1/catalog", &wire); err != nil {
		return nil, err
	}
	out := make([]*catalog.Table, 0, len(wire))
	for _, wt := range wire {
		t, err := market.TableOfWire(wt)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// TuplesPerTransaction fetches the page size t of the named dataset.
func (c *Client) TuplesPerTransaction(dataset string) (int, error) {
	var wire []market.WireTable
	if err := c.get("/v1/catalog", &wire); err != nil {
		return 0, err
	}
	for _, wt := range wire {
		if wt.Dataset == dataset {
			return wt.TuplesPerTransaction, nil
		}
	}
	return 0, fmt.Errorf("unknown dataset %s", dataset)
}

// Meter fetches the account's current spending.
func (c *Client) Meter() (market.Meter, error) {
	var m market.Meter
	err := c.get("/v1/meter", &m)
	return m, err
}

// Call executes one RESTful data call. It implements market.Caller.
func (c *Client) Call(q catalog.AccessQuery) (market.Result, error) {
	params := url.Values{}
	for _, p := range q.Preds {
		switch {
		case p.Eq != nil:
			params.Set(p.Attr, p.Eq.String())
		default:
			if p.Lo != nil {
				params.Set(p.Attr+".gte", strconv.FormatInt(*p.Lo, 10))
			}
			if p.Hi != nil {
				params.Set(p.Attr+".lte", strconv.FormatInt(*p.Hi, 10))
			}
		}
	}
	ds := q.Dataset
	if ds == "" {
		ds = "-" // the server resolves "-" by unique table name
	}
	base := "/v1/data/" + url.PathEscape(ds) + "/" + url.PathEscape(q.Table)
	var combined market.WireResult
	page := 0
	for {
		params.Set("page", strconv.Itoa(page))
		path := base + "?" + params.Encode()
		var wr market.WireResult
		if err := c.get(path, &wr); err != nil {
			return market.Result{}, err
		}
		if page == 0 {
			combined = wr
		} else {
			combined.Rows = append(combined.Rows, wr.Rows...)
		}
		if wr.NextPage == 0 {
			break
		}
		page = wr.NextPage
	}
	combined.NextPage = 0
	return market.ResultOfWire(combined)
}
