package connector

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"payless/internal/catalog"
)

// retryAfterServer always answers 429 with a long Retry-After, so every
// attempt parks the connector in a retry wait.
func retryAfterServer(secs string) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", secs)
		http.Error(w, "come back later", http.StatusTooManyRequests)
	}))
}

// TestRetryAfterWaitAbortsOnCancel pins the cancellation guarantee of the
// retry wait with a fake clock: the injected sleep records the requested
// delay and then never returns (time never advances), so the only way the
// call can finish is the connector aborting the wait itself when the
// caller's context is cancelled. Before waitRetry, a sleep implementation
// that ignored its context would park the query for the full Retry-After —
// 60 fake seconds here — after the caller had already hung up.
func TestRetryAfterWaitAbortsOnCancel(t *testing.T) {
	srv := retryAfterServer("60")
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(3), WithBackoff(time.Millisecond, 120*time.Second))
	requested := make(chan time.Duration, 1)
	blocked := make(chan struct{})
	t.Cleanup(func() { close(blocked) })
	c.sleep = func(ctx context.Context, d time.Duration) error {
		select {
		case requested <- d:
		default:
		}
		<-blocked // the fake clock never ticks
		return nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := c.Call(ctx, catalog.AccessQuery{Dataset: "DS", Table: "T"})
		errc <- err
	}()

	// Wait until the connector is provably inside the retry wait, then hang up.
	var d time.Duration
	select {
	case d = <-requested:
	case <-time.After(5 * time.Second):
		t.Fatal("connector never reached the retry wait")
	}
	if d != 60*time.Second {
		t.Fatalf("retry wait honoured %v, want the announced Retry-After of 60s", d)
	}
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("abort took %v — the wait was slept out, not aborted", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled call still waiting: the Retry-After wait was not aborted")
	}
}

// TestMeterContextAbortsRetryWait covers the context-threaded metadata
// calls: a cancelled MeterContext must abort a pending backoff instead of
// retrying to exhaustion on the Background context.
func TestMeterContextAbortsRetryWait(t *testing.T) {
	srv := retryAfterServer("60")
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(5), WithBackoff(time.Millisecond, 120*time.Second))
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.MeterContext(ctx)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first attempt land in the wait
	cancel()

	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled MeterContext still waiting")
	}
}
