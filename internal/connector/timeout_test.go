package connector

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"payless/internal/catalog"
)

// TestPerCallTimeoutBoundsEachAttempt pins the configured path: a server
// slower than the per-attempt deadline must fail fast, not hang for the
// server's pleasure.
func TestPerCallTimeoutBoundsEachAttempt(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
		http.Error(w, `{"Error":"too late"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(0), WithPerCallTimeout(20*time.Millisecond), fastBackoff())
	start := time.Now()
	_, err := c.Call(context.Background(), catalog.AccessQuery{Dataset: "DS", Table: "T"})
	if err == nil {
		t.Fatal("stalled server must surface an error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("per-call timeout ignored: took %v", elapsed)
	}
}

// TestPerCallTimeoutZeroIsCallerBounded pins the explicit-zero path: with
// the per-attempt deadline disabled, only the caller's context bounds the
// call — the regression here was Call discarding the caller's context and
// a zero timeout silently meaning "unbounded".
func TestPerCallTimeoutZeroIsCallerBounded(t *testing.T) {
	m := newMarket(t)
	inner := m.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(30 * time.Millisecond) // slower than the tight deadline below
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(0), WithPerCallTimeout(0), fastBackoff())
	if c.perCallTimeout != 0 {
		t.Fatalf("explicit zero must stick, got %v", c.perCallTimeout)
	}

	// A generous caller context succeeds: zero means "no per-attempt
	// deadline", not "default".
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := c.Call(ctx, catalog.AccessQuery{Dataset: "WHW", Table: "Station"})
	if err != nil {
		t.Fatalf("caller-bounded call failed: %v", err)
	}
	if res.Records != 150 {
		t.Fatalf("records: %d", res.Records)
	}

	// A tight caller context must still cut the attempt off — the caller's
	// deadline reaches the transport even with the per-attempt one off.
	tight, cancelTight := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancelTight()
	start := time.Now()
	if _, err := c.Call(tight, catalog.AccessQuery{Dataset: "WHW", Table: "Station"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("caller deadline ignored: took %v", elapsed)
	}
}

// TestPerCallTimeoutNegativeClampsToDisabled pins the documented clamp.
func TestPerCallTimeoutNegativeClampsToDisabled(t *testing.T) {
	c := New("http://x", "k", WithPerCallTimeout(-time.Second))
	if c.perCallTimeout != 0 {
		t.Fatalf("negative must clamp to disabled, got %v", c.perCallTimeout)
	}
	if d := New("http://x", "k").perCallTimeout; d != DefaultPerCallTimeout {
		t.Fatalf("untouched client must keep the default, got %v", d)
	}
}
