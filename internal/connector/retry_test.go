package connector

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"payless/internal/catalog"
)

// fastBackoff keeps retry tests quick.
func fastBackoff() Option { return WithBackoff(time.Millisecond, 2*time.Millisecond) }

func TestPermanent4xxFailsFastWithoutRetry(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"Error":"malformed call"}`, http.StatusBadRequest)
	}))
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(5), fastBackoff())
	_, err := c.Call(context.Background(), catalog.AccessQuery{Dataset: "DS", Table: "T"})
	if err == nil {
		t.Fatal("400 must surface an error")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("want StatusError 400, got %v", err)
	}
	// A permanent client error must not be re-issued: every accepted call
	// is billed, so retrying a 400 could re-bill a broken request forever.
	if hits.Load() != 1 {
		t.Fatalf("400 was retried: %d attempts, want 1", hits.Load())
	}
}

func TestRetryable5xxRecovers(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"Calls":1,"Records":0,"Transactions":0,"Price":0}`))
	}))
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(3), fastBackoff())
	if _, err := c.Meter(); err != nil {
		t.Fatalf("5xx should be retried to success: %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("attempts: %d, want 3", hits.Load())
	}
}

func TestTooManyRequestsIsRetryable(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"Calls":1,"Records":0,"Transactions":0,"Price":0}`))
	}))
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(2), fastBackoff())
	if _, err := c.Meter(); err != nil {
		t.Fatalf("429 should be retried: %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("attempts: %d, want 2", hits.Load())
	}
}

func TestContextCancellationStopsRetrying(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		time.Sleep(200 * time.Millisecond)
		w.Write([]byte(`[]`))
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	c := New(srv.URL, "k", WithRetries(5), fastBackoff())
	start := time.Now()
	_, err := c.Call(ctx, catalog.AccessQuery{Dataset: "DS", Table: "T"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Fatalf("cancellation ignored: took %v", elapsed)
	}
	if hits.Load() != 1 {
		t.Fatalf("cancelled call kept retrying: %d attempts", hits.Load())
	}
}

func TestPerCallTimeoutRetriesSlowAttempts(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			time.Sleep(150 * time.Millisecond) // first attempt exceeds the per-call deadline
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"Calls":1,"Records":0,"Transactions":0,"Price":0}`))
	}))
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(2), fastBackoff(), WithPerCallTimeout(30*time.Millisecond))
	if _, err := c.Meter(); err != nil {
		t.Fatalf("slow attempt should retry under fresh deadline: %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("attempts: %d, want 2", hits.Load())
	}
}

func TestBackoffDelayShape(t *testing.T) {
	c := New("http://example", "k", WithBackoff(100*time.Millisecond, 400*time.Millisecond))
	for attempt, max := range map[int]time.Duration{1: 100 * time.Millisecond, 2: 200 * time.Millisecond, 5: 400 * time.Millisecond} {
		for i := 0; i < 20; i++ {
			d := c.backoffDelay(attempt)
			if d < max/2 || d > max {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, max/2, max)
			}
		}
	}
}
