package connector

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"payless/internal/overload"
)

// failingServer always answers 500, so every get() exhausts its retries.
func failingServer(t *testing.T) (*httptest.Server, *int) {
	t.Helper()
	attempts := new(int)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		*attempts++
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	return srv, attempts
}

func TestRetryBudgetBoundsConnectorRetries(t *testing.T) {
	srv, attempts := failingServer(t)
	c := New(srv.URL, "k", WithRetries(5), WithBackoff(time.Microsecond, time.Microsecond))

	// With one token of credit: the first attempt is free, exactly one
	// retry is admitted, the second is denied with ErrRetryBudget.
	ctx := overload.WithBudget(context.Background(), overload.NewRetryBudget(1))
	_, err := c.MeterContext(ctx)
	if !errors.Is(err, overload.ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	if *attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (first + one budgeted retry)", *attempts)
	}

	// Without a budget on the context the full retry count is available.
	*attempts = 0
	if _, err := c.MeterContext(context.Background()); errors.Is(err, overload.ErrRetryBudget) {
		t.Fatalf("budget-free context must not hit ErrRetryBudget: %v", err)
	}
	if *attempts != 6 {
		t.Fatalf("attempts = %d, want 6 (1 + 5 retries)", *attempts)
	}
}

func TestRetryBudgetErrDistinctFromCircuitOpen(t *testing.T) {
	srv, _ := failingServer(t)
	c := New(srv.URL, "k", WithRetries(3), WithBackoff(time.Microsecond, time.Microsecond))
	ctx := overload.WithBudget(context.Background(), overload.NewRetryBudget(0))
	_, err := c.MeterContext(ctx)
	if !errors.Is(err, overload.ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		t.Fatalf("a budget denial is not a context error: %v", err)
	}
}

func TestDeadlineShortCircuitsRetryWait(t *testing.T) {
	srv, attempts := failingServer(t)
	// Backoff far longer than the deadline's remaining budget: the retry
	// wait must not be slept at all.
	c := New(srv.URL, "k", WithRetries(3), WithBackoff(10*time.Second, 10*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()

	start := time.Now()
	_, err := c.MeterContext(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 400*time.Millisecond {
		t.Fatalf("returned after %v: the 10s backoff was slept instead of short-circuited", elapsed)
	}
	if *attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (the retry was abandoned before launch)", *attempts)
	}
}

func TestDeadlineSurvivesAffordableBackoff(t *testing.T) {
	// A backoff the deadline CAN afford is slept and the retry proceeds.
	attempts := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts == 1 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"Calls":0,"Records":0,"Transactions":0,"Price":0}`))
	}))
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(2), WithBackoff(time.Millisecond, time.Millisecond))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.MeterContext(ctx); err != nil {
		t.Fatalf("affordable backoff must recover: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}
