package connector

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"payless/internal/catalog"
	"payless/internal/market"
)

// recordSleeps replaces the client's backoff sleep with a fake clock that
// records each requested duration without actually waiting.
func recordSleeps(c *Client) *[]time.Duration {
	var mu sync.Mutex
	slept := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		*slept = append(*slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	return slept
}

func TestRetryAfterHonored(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "slow down", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"Calls":1,"Records":0,"Transactions":0,"Price":0}`))
	}))
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(2), WithBackoff(time.Millisecond, 2*time.Second))
	slept := recordSleeps(c)
	if _, err := c.Meter(); err != nil {
		t.Fatal(err)
	}
	// The server asked for 1s; with backoffMax 2s the request is honoured
	// exactly — no jitter, no exponential schedule.
	if len(*slept) != 1 || (*slept)[0] != time.Second {
		t.Fatalf("sleeps = %v, want exactly [1s]", *slept)
	}
}

func TestRetryAfterCappedByBackoffMax(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "3600")
			http.Error(w, "maintenance", http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"Calls":1,"Records":0,"Transactions":0,"Price":0}`))
	}))
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(2), WithBackoff(time.Millisecond, 50*time.Millisecond))
	slept := recordSleeps(c)
	if _, err := c.Meter(); err != nil {
		t.Fatal(err)
	}
	// An hour-long Retry-After must not stall the client past its own cap.
	if len(*slept) != 1 || (*slept)[0] != 50*time.Millisecond {
		t.Fatalf("sleeps = %v, want exactly [50ms]", *slept)
	}
}

func TestParseRetryAfter(t *testing.T) {
	mk := func(v string) http.Header {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return h
	}
	if d := parseRetryAfter(mk("")); d != 0 {
		t.Fatalf("absent header: %v, want 0", d)
	}
	if d := parseRetryAfter(mk("7")); d != 7*time.Second {
		t.Fatalf("seconds form: %v, want 7s", d)
	}
	if d := parseRetryAfter(mk("-3")); d != 0 {
		t.Fatalf("negative seconds: %v, want 0", d)
	}
	if d := parseRetryAfter(mk("garbage")); d != 0 {
		t.Fatalf("unparseable: %v, want 0", d)
	}
	future := time.Now().Add(10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(mk(future)); d < 8*time.Second || d > 10*time.Second {
		t.Fatalf("HTTP-date form: %v, want ~10s", d)
	}
	past := time.Now().Add(-10 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(mk(past)); d != 0 {
		t.Fatalf("past HTTP-date: %v, want 0", d)
	}
}

func TestCancelDuringBackoffSleep(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	// Backoff far longer than the context deadline: the cancellation must
	// land during the sleep, not during an HTTP attempt.
	c := New(srv.URL, "k", WithRetries(5), WithBackoff(10*time.Second, 10*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Call(ctx, catalog.AccessQuery{Dataset: "DS", Table: "T"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded out of the backoff sleep, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("backoff sleep ignored cancellation: took %v", elapsed)
	}
	if hits.Load() != 1 {
		t.Fatalf("attempts after cancel: %d, want 1", hits.Load())
	}
}

func TestMalformedBodyIsRetried(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			// A 200 whose body was truncated mid-flight.
			w.Write([]byte(`{"Calls":1,"Rec`))
			return
		}
		w.Write([]byte(`{"Calls":1,"Records":0,"Transactions":0,"Price":0}`))
	}))
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(2), fastBackoff())
	if _, err := c.Meter(); err != nil {
		t.Fatalf("truncated 200 body should be retried: %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("attempts: %d, want 2", hits.Load())
	}
}

func TestCallIDStableAcrossRetriesAndPages(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get(market.CallIDHeader))
		mu.Unlock()
		n := hits.Add(1)
		switch {
		case n == 1:
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
		case r.URL.Query().Get("page") == "0":
			w.Write([]byte(`{"Calls":1,"Records":2,"Transactions":1,"Price":1,"Rows":[],"NextPage":1}`))
		default:
			w.Write([]byte(`{"Calls":1,"Records":2,"Transactions":1,"Price":1,"Rows":[],"NextPage":0}`))
		}
	}))
	defer srv.Close()

	c := New(srv.URL, "k", WithRetries(2), fastBackoff())
	if _, err := c.Call(context.Background(), catalog.AccessQuery{Dataset: "DS", Table: "T"}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 3 {
		t.Fatalf("requests: %d, want 3 (failed attempt + retry + page 1)", len(seen))
	}
	if seen[0] == "" {
		t.Fatal("data call carried no idempotency ID")
	}
	for i, id := range seen {
		if id != seen[0] {
			t.Fatalf("request %d changed call ID: %q vs %q — retries would be billed as new calls", i, id, seen[0])
		}
	}
}

func TestWithoutCallIDsSendsNoHeader(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.Header.Get(market.CallIDHeader); id != "" {
			t.Errorf("unexpected %s header: %q", market.CallIDHeader, id)
		}
		w.Write([]byte(`{"Calls":1,"Records":0,"Transactions":0,"Price":0,"Rows":[],"NextPage":0}`))
	}))
	defer srv.Close()

	c := New(srv.URL, "k", WithoutCallIDs(), fastBackoff())
	if _, err := c.Call(context.Background(), catalog.AccessQuery{Dataset: "DS", Table: "T"}); err != nil {
		t.Fatal(err)
	}
}
