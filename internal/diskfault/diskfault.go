// Package diskfault is an in-memory wal.FS that injects disk failures for
// the durability suites — the storage-side sibling of internal/chaos.
//
// It models the POSIX crash contract the durability layer is written
// against: file contents become durable only on File.Sync, and namespace
// changes (create, rename, remove, truncate-on-open) become durable only on
// SyncDir of the containing directory. Two complementary power-cut models
// are derived from one recorded run:
//
//   - Torn-write images (Image): every mutating op before the crash point
//     persisted in full — the disk was fast — and the op at the crash point
//     persisted only a prefix. Sweeping every (op, write-prefix) pair is
//     the "kill at every write-prefix" matrix; it exercises torn WAL
//     frames, half-written snapshots, and crashes between rename and log
//     truncation.
//
//   - Strict images (ImageStrict): nothing persisted beyond what fsync
//     contracts guarantee — every unsynced write and every un-SyncDir'd
//     rename/create/remove is lost. This is the adversarial model that
//     catches a missing fsync or a missing directory sync.
//
// Live fault injection (short writes, failed syncs, dead disks) is driven
// by a per-op hook, so directed tests can fail exactly the operation they
// are about.
package diskfault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"payless/internal/wal"
)

// OpKind classifies a mutating filesystem operation.
type OpKind int

const (
	// OpCreate is an OpenFile that created or truncated a file.
	OpCreate OpKind = iota
	// OpWrite appends Data to Name.
	OpWrite
	// OpSync fsyncs Name's contents.
	OpSync
	// OpTruncate cuts Name to Size bytes.
	OpTruncate
	// OpRename atomically moves Name to NewName.
	OpRename
	// OpRemove deletes Name.
	OpRemove
	// OpSyncDir fsyncs the namespace of directory Name.
	OpSyncDir
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	default:
		return fmt.Sprintf("op(%d)", int(k))
	}
}

// Op is one recorded mutating operation.
type Op struct {
	Kind    OpKind
	Name    string
	NewName string // rename target
	Data    []byte // write payload
	Size    int64  // truncate size
	// Truncated marks an OpCreate that cut an existing file to zero
	// (O_TRUNC on an existing path).
	Truncated bool
}

func (o Op) String() string {
	switch o.Kind {
	case OpWrite:
		return fmt.Sprintf("write(%s, %dB)", o.Name, len(o.Data))
	case OpRename:
		return fmt.Sprintf("rename(%s -> %s)", o.Name, o.NewName)
	case OpTruncate:
		return fmt.Sprintf("truncate(%s, %d)", o.Name, o.Size)
	default:
		return fmt.Sprintf("%s(%s)", o.Kind, o.Name)
	}
}

// ErrDiskDead is returned by every operation after Kill.
var ErrDiskDead = errors.New("diskfault: disk dead")

// ErrInjected is the root of hook-injected failures.
var ErrInjected = errors.New("diskfault: injected fault")

// Hook inspects (and may fail) each mutating op before it applies. idx is
// the op's index in the recorded sequence. Returning a non-nil error fails
// the operation; for OpWrite the hook may additionally shorten op.Data to
// model a short write — the prefix still reaches the file, mirroring a
// partial write(2).
type Hook func(idx int, op *Op) error

// inode is one file's contents: cur is what the process sees, durable is
// what survives a power cut (last synced contents).
type inode struct {
	cur     []byte
	durable []byte
	// exists tracks whether the inode is reachable in the durable
	// namespace (set by SyncDir of its directory).
}

// FS is the fault-injecting in-memory filesystem. The zero value is not
// usable; call New.
type FS struct {
	mu sync.Mutex
	// cur and durable are the volatile and synced namespaces: path ->
	// inode. Renames move bindings in cur; SyncDir promotes a directory's
	// bindings (and removals) into durable.
	cur     map[string]*inode
	durable map[string]*inode
	dirs    map[string]bool // directories known to exist (volatile view)

	ops     []Op
	record  bool
	hook    Hook
	dead    bool
	opIndex int
}

// New returns an empty filesystem that records every mutating op.
func New() *FS {
	return &FS{
		cur:     make(map[string]*inode),
		durable: make(map[string]*inode),
		dirs:    make(map[string]bool),
		record:  true,
	}
}

// SetHook installs the fault hook (nil removes it).
func (m *FS) SetHook(h Hook) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hook = h
}

// Kill makes every subsequent operation fail with ErrDiskDead — the
// process-side view of a machine losing power mid-run.
func (m *FS) Kill() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dead = true
}

// Revive re-enables operations after Kill (the test harness's reboot).
func (m *FS) Revive() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dead = false
}

// LosePower reverts the filesystem to its durable state: every file's
// contents roll back to the last Sync, and every namespace change since the
// last SyncDir of its directory is undone. The disk is revived.
func (m *FS) LosePower() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cur = make(map[string]*inode, len(m.durable))
	for name, ino := range m.durable {
		ino.cur = append([]byte(nil), ino.durable...)
		m.cur[name] = ino
	}
	m.dead = false
}

// Ops returns a copy of the recorded mutating operations.
func (m *FS) Ops() []Op {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Op, len(m.ops))
	copy(out, m.ops)
	return out
}

// OpCount returns how many mutating operations have been recorded.
func (m *FS) OpCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.ops)
}

// step runs the hook and records the op. Caller holds the lock. The
// returned error (if any) must fail the operation; for OpWrite the caller
// must still apply op.Data (possibly hook-shortened) before failing.
func (m *FS) step(op *Op) error {
	if m.dead {
		return ErrDiskDead
	}
	idx := m.opIndex
	m.opIndex++
	var err error
	if m.hook != nil {
		err = m.hook(idx, op)
	}
	if m.record {
		rec := *op
		rec.Data = append([]byte(nil), op.Data...)
		m.ops = append(m.ops, rec)
	}
	return err
}

// --- wal.FS implementation ---

type memFile struct {
	fs     *FS
	name   string
	ino    *inode
	pos    int64 // read position
	wr     bool
	closed bool
}

// OpenFile implements wal.FS.
func (m *FS) OpenFile(name string, flag int, perm os.FileMode) (wal.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return nil, ErrDiskDead
	}
	name = filepath.Clean(name)
	ino, exists := m.cur[name]
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	switch {
	case !exists && flag&os.O_CREATE == 0:
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	case !exists:
		op := Op{Kind: OpCreate, Name: name}
		if err := m.step(&op); err != nil {
			return nil, &os.PathError{Op: "open", Path: name, Err: err}
		}
		ino = &inode{}
		m.cur[name] = ino
	case flag&os.O_TRUNC != 0:
		op := Op{Kind: OpCreate, Name: name, Truncated: true}
		if err := m.step(&op); err != nil {
			return nil, &os.PathError{Op: "open", Path: name, Err: err}
		}
		ino.cur = nil
	}
	return &memFile{fs: m, name: name, ino: ino, wr: writable}, nil
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.dead {
		return 0, ErrDiskDead
	}
	if f.pos >= int64(len(f.ino.cur)) {
		return 0, io.EOF
	}
	n := copy(p, f.ino.cur[f.pos:])
	f.pos += int64(n)
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if !f.wr {
		return 0, &os.PathError{Op: "write", Path: f.name, Err: os.ErrPermission}
	}
	op := Op{Kind: OpWrite, Name: f.name, Data: p}
	err := f.fs.step(&op)
	// Apply whatever the hook let through (a short write's prefix).
	f.ino.cur = append(f.ino.cur, op.Data...)
	if err != nil {
		return len(op.Data), &os.PathError{Op: "write", Path: f.name, Err: err}
	}
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	op := Op{Kind: OpSync, Name: f.name}
	if err := f.fs.step(&op); err != nil {
		return &os.PathError{Op: "sync", Path: f.name, Err: err}
	}
	f.ino.durable = append([]byte(nil), f.ino.cur...)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	op := Op{Kind: OpTruncate, Name: f.name, Size: size}
	if err := f.fs.step(&op); err != nil {
		return &os.PathError{Op: "truncate", Path: f.name, Err: err}
	}
	if size < int64(len(f.ino.cur)) {
		f.ino.cur = f.ino.cur[:size]
	}
	return nil
}

func (f *memFile) Close() error {
	f.closed = true
	return nil
}

// Rename implements wal.FS: atomic in the volatile namespace, durable only
// after SyncDir.
func (m *FS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	ino, ok := m.cur[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	op := Op{Kind: OpRename, Name: oldpath, NewName: newpath}
	if err := m.step(&op); err != nil {
		return &os.PathError{Op: "rename", Path: oldpath, Err: err}
	}
	delete(m.cur, oldpath)
	m.cur[newpath] = ino
	return nil
}

// Remove implements wal.FS.
func (m *FS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = filepath.Clean(name)
	if _, ok := m.cur[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	op := Op{Kind: OpRemove, Name: name}
	if err := m.step(&op); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	delete(m.cur, name)
	return nil
}

// MkdirAll implements wal.FS. Directory creation is considered durable
// immediately — the suites crash around file ops, not mkdir.
func (m *FS) MkdirAll(path string, perm os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return ErrDiskDead
	}
	m.dirs[filepath.Clean(path)] = true
	return nil
}

// ReadDir implements wal.FS.
func (m *FS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return nil, ErrDiskDead
	}
	dir = filepath.Clean(dir)
	var names []string
	for name := range m.cur {
		if filepath.Dir(name) == dir {
			names = append(names, filepath.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Stat implements wal.FS.
func (m *FS) Stat(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		return 0, ErrDiskDead
	}
	ino, ok := m.cur[filepath.Clean(name)]
	if !ok {
		return 0, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
	}
	return int64(len(ino.cur)), nil
}

// SyncDir implements wal.FS: promotes dir's namespace (bindings and
// removals) into the durable view.
func (m *FS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = filepath.Clean(dir)
	op := Op{Kind: OpSyncDir, Name: dir}
	if err := m.step(&op); err != nil {
		return &os.PathError{Op: "syncdir", Path: dir, Err: err}
	}
	m.syncDirLocked(dir)
	return nil
}

func (m *FS) syncDirLocked(dir string) {
	for name := range m.durable {
		if filepath.Dir(name) == dir {
			if _, still := m.cur[name]; !still {
				delete(m.durable, name)
			}
		}
	}
	for name, ino := range m.cur {
		if filepath.Dir(name) == dir {
			m.durable[name] = ino
		}
	}
}

// --- crash-image construction ---

// Image builds the torn-write power-cut image at crash point k: ops[0..k-1]
// applied in full, op k (if it is a write and tear >= 0) applied only up to
// tear bytes, everything later never issued. Every applied op is treated as
// durable — the disk kept up — so the image isolates exactly the torn-frame
// and ordering hazards. The returned FS records nothing and injects
// nothing; recovery runs against it directly.
func Image(ops []Op, k int, tear int) *FS {
	img := New()
	img.record = false
	apply := func(op Op, tearTo int) {
		switch op.Kind {
		case OpCreate:
			ino, ok := img.cur[op.Name]
			if !ok {
				img.cur[op.Name] = &inode{}
			} else if op.Truncated {
				ino.cur = nil
			}
		case OpWrite:
			if ino, ok := img.cur[op.Name]; ok {
				data := op.Data
				if tearTo >= 0 && tearTo < len(data) {
					data = data[:tearTo]
				}
				ino.cur = append(ino.cur, data...)
			}
		case OpTruncate:
			if ino, ok := img.cur[op.Name]; ok && op.Size < int64(len(ino.cur)) {
				ino.cur = ino.cur[:op.Size]
			}
		case OpRename:
			if ino, ok := img.cur[op.Name]; ok {
				delete(img.cur, op.Name)
				img.cur[op.NewName] = ino
			}
		case OpRemove:
			delete(img.cur, op.Name)
		case OpSync, OpSyncDir:
			// contents are already "durable" in this model
		}
	}
	if k > len(ops) {
		k = len(ops)
	}
	for i := 0; i < k; i++ {
		apply(ops[i], -1)
	}
	if k < len(ops) && tear >= 0 && ops[k].Kind == OpWrite {
		apply(ops[k], tear)
	}
	img.sealDurable()
	return img
}

// ImageStrict builds the strict power-cut image at crash point k: ops
// [0..k-1] are applied through the sync-tracking semantics and then power
// is lost — only explicitly synced contents and SyncDir'd namespace
// changes survive. This is the image that exposes a missing fsync.
func ImageStrict(ops []Op, k int) *FS {
	img := New()
	img.record = false
	if k > len(ops) {
		k = len(ops)
	}
	for i := 0; i < k; i++ {
		op := ops[i]
		switch op.Kind {
		case OpCreate:
			ino, ok := img.cur[op.Name]
			if !ok {
				img.cur[op.Name] = &inode{}
			} else if op.Truncated {
				ino.cur = nil
			}
		case OpWrite:
			if ino, ok := img.cur[op.Name]; ok {
				ino.cur = append(ino.cur, op.Data...)
			}
		case OpSync:
			if ino, ok := img.cur[op.Name]; ok {
				ino.durable = append([]byte(nil), ino.cur...)
			}
		case OpTruncate:
			if ino, ok := img.cur[op.Name]; ok && op.Size < int64(len(ino.cur)) {
				ino.cur = ino.cur[:op.Size]
			}
		case OpRename:
			if ino, ok := img.cur[op.Name]; ok {
				delete(img.cur, op.Name)
				img.cur[op.NewName] = ino
			}
		case OpRemove:
			delete(img.cur, op.Name)
		case OpSyncDir:
			img.syncDirLocked(op.Name)
		}
	}
	img.LosePower()
	img.sealDurable()
	return img
}

// sealDurable makes the current volatile state the durable baseline, so the
// image behaves like a freshly mounted disk.
func (m *FS) sealDurable() {
	m.durable = make(map[string]*inode, len(m.cur))
	for name, ino := range m.cur {
		ino.durable = append([]byte(nil), ino.cur...)
		m.durable[name] = ino
	}
}

// WritePrefixes returns the tear points worth testing for a write of n
// bytes: nothing persisted is crash point k itself, so the interesting
// tears are a leading byte, the midpoint, and all-but-one — plus the full
// write (equivalent to crashing after the op, covered by k+1, but cheap).
func WritePrefixes(n int) []int {
	switch {
	case n <= 1:
		return nil
	case n <= 4:
		return []int{1, n - 1}
	default:
		return []int{1, n / 2, n - 1}
	}
}

// Dump renders the volatile file listing for test failure messages.
func (m *FS) Dump() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for name := range m.cur {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		fmt.Fprintf(&b, "%s (%dB)\n", name, len(m.cur[name].cur))
	}
	return b.String()
}
