package diskfault

import (
	"errors"
	"os"
	"testing"

	"payless/internal/wal"
)

func TestOpRecordingAndBasicFS(t *testing.T) {
	fs := New()
	if err := fs.MkdirAll("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := fs.OpenFile("/d/a", os.O_WRONLY|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename("/d/a", "/d/b"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("/d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "b" {
		t.Fatalf("ReadDir: %v, want [b]", names)
	}
	if size, err := fs.Stat("/d/b"); err != nil || size != 5 {
		t.Fatalf("Stat: %d, %v", size, err)
	}
	data, err := wal.ReadAll(fs, "/d/b")
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadAll: %q, %v", data, err)
	}
	kinds := []OpKind{OpCreate, OpWrite, OpSync, OpRename, OpSyncDir}
	ops := fs.Ops()
	if len(ops) != len(kinds) {
		t.Fatalf("%d ops recorded, want %d: %v", len(ops), len(kinds), ops)
	}
	for i, k := range kinds {
		if ops[i].Kind != k {
			t.Errorf("op %d: %v, want %v", i, ops[i].Kind, k)
		}
	}
}

func TestLosePowerRevertsToDurable(t *testing.T) {
	fs := New()
	f, _ := fs.OpenFile("/x", os.O_WRONLY|os.O_CREATE, 0o644)
	f.Write([]byte("synced"))
	f.Sync()
	f.Write([]byte("+lost"))
	f.Close()
	fs.SyncDir("/") // make the create durable
	// A renamed-but-not-SyncDir'd file reverts to its old name.
	g, _ := fs.OpenFile("/y", os.O_WRONLY|os.O_CREATE, 0o644)
	g.Write([]byte("ephemeral"))
	g.Close()

	fs.LosePower()

	data, err := wal.ReadAll(fs, "/x")
	if err != nil || string(data) != "synced" {
		t.Fatalf("/x after power loss: %q, %v — unsynced tail must vanish", data, err)
	}
	if _, err := fs.Stat("/y"); !os.IsNotExist(err) {
		t.Fatalf("/y survived power loss without SyncDir: %v", err)
	}
}

func TestKillFailsEverything(t *testing.T) {
	fs := New()
	f, _ := fs.OpenFile("/x", os.O_WRONLY|os.O_CREATE, 0o644)
	fs.Kill()
	if _, err := f.Write([]byte("z")); !errors.Is(err, ErrDiskDead) {
		t.Fatalf("write after kill: %v", err)
	}
	if _, err := fs.OpenFile("/y", os.O_CREATE|os.O_WRONLY, 0o644); !errors.Is(err, ErrDiskDead) {
		t.Fatalf("open after kill: %v", err)
	}
	fs.Revive()
	if _, err := f.Write([]byte("z")); err != nil {
		t.Fatalf("write after revive: %v", err)
	}
}

func TestHookShortWrite(t *testing.T) {
	fs := New()
	fs.SetHook(func(idx int, op *Op) error {
		if op.Kind == OpWrite && len(op.Data) > 3 {
			op.Data = op.Data[:3]
			return ErrInjected
		}
		return nil
	})
	f, _ := fs.OpenFile("/x", os.O_WRONLY|os.O_CREATE, 0o644)
	if _, err := f.Write([]byte("abcdef")); !errors.Is(err, ErrInjected) {
		t.Fatalf("short write not injected: %v", err)
	}
	fs.SetHook(nil)
	data, _ := wal.ReadAll(fs, "/x")
	if string(data) != "abc" {
		t.Fatalf("short write left %q, want abc", data)
	}
}

func TestHookFailedSync(t *testing.T) {
	fs := New()
	fs.SetHook(func(idx int, op *Op) error {
		if op.Kind == OpSync {
			return ErrInjected
		}
		return nil
	})
	f, _ := fs.OpenFile("/x", os.O_WRONLY|os.O_CREATE, 0o644)
	f.Write([]byte("data"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync not injected: %v", err)
	}
	fs.SetHook(nil)
	fs.LosePower()
	// The failed sync must not have made the contents durable. The create
	// itself was never SyncDir'd either, so the file is gone entirely.
	if _, err := fs.Stat("/x"); !os.IsNotExist(err) {
		t.Fatalf("file durable despite failed sync: %v", err)
	}
}

// walWorkload appends frames through the WAL against fs and returns the
// payloads written.
func walWorkload(t *testing.T, fs *FS, n int, policy wal.SyncPolicy) [][]byte {
	t.Helper()
	w, err := wal.NewWriter(fs, "/d/wal.log", 0, policy, 2)
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	for i := 0; i < n; i++ {
		p := []byte{byte('a' + i), byte('0' + i), 'x', 'y', byte(i)}
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		payloads = append(payloads, p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return payloads
}

// TestImageTornMatrixWAL drives the WAL over the shim, then for every
// (op, write-prefix) crash point rebuilds the torn image and asserts replay
// yields a strict prefix of the clean payload sequence.
func TestImageTornMatrixWAL(t *testing.T) {
	rec := New()
	rec.MkdirAll("/d", 0o755)
	payloads := walWorkload(t, rec, 6, wal.SyncPerCall)
	ops := rec.Ops()
	if len(ops) == 0 {
		t.Fatal("no ops recorded")
	}
	points := 0
	for k := 0; k <= len(ops); k++ {
		tears := []int{-1}
		if k < len(ops) && ops[k].Kind == OpWrite {
			tears = append(tears, WritePrefixes(len(ops[k].Data))...)
		}
		for _, tear := range tears {
			img := Image(ops, k, tear)
			var got [][]byte
			res, err := wal.Replay(img, "/d/wal.log", func(p []byte) error {
				got = append(got, append([]byte(nil), p...))
				return nil
			})
			if err != nil {
				t.Fatalf("k=%d tear=%d: replay: %v\n%s", k, tear, err, img.Dump())
			}
			if res.Records > len(payloads) {
				t.Fatalf("k=%d tear=%d: %d records > %d written", k, tear, res.Records, len(payloads))
			}
			for i, p := range got {
				if string(p) != string(payloads[i]) {
					t.Fatalf("k=%d tear=%d: record %d differs from clean run", k, tear, i)
				}
			}
			points++
		}
	}
	if points < len(ops) {
		t.Fatalf("only %d crash points exercised", points)
	}
}

// TestImageStrictWAL checks the adversarial model: with SyncPerCall every
// append that returned must survive; with SyncOff, nothing has to.
func TestImageStrictWAL(t *testing.T) {
	rec := New()
	rec.MkdirAll("/d", 0o755)
	payloads := walWorkload(t, rec, 5, wal.SyncPerCall)
	ops := rec.Ops()

	// Crash after everything: all 5 records must be durable, because the
	// writer synced each append and the create... the create needs SyncDir.
	// The WAL layer's contract is that semstore's durable open SyncDirs the
	// store directory once at setup; emulate that here.
	rec2 := New()
	rec2.MkdirAll("/d", 0o755)
	// Re-run workload but SyncDir after the file exists.
	w, err := wal.NewWriter(rec2, "/d/wal.log", 0, wal.SyncPerCall, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec2.SyncDir("/d"); err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	img := ImageStrict(rec2.Ops(), len(rec2.Ops()))
	res, err := wal.Replay(img, "/d/wal.log", func([]byte) error { return nil })
	if err != nil {
		t.Fatalf("strict replay: %v\n%s", err, img.Dump())
	}
	if res.Records != len(payloads) {
		t.Fatalf("strict full-sync image lost records: %d of %d", res.Records, len(payloads))
	}

	// At every intermediate crash point the recovered records are a prefix.
	for k := 0; k <= len(ops); k++ {
		img := ImageStrict(ops, k)
		var got int
		if _, err := wal.Replay(img, "/d/wal.log", func([]byte) error { got++; return nil }); err != nil {
			t.Fatalf("k=%d: strict replay: %v", k, err)
		}
		if got > len(payloads) {
			t.Fatalf("k=%d: phantom records: %d > %d", k, got, len(payloads))
		}
	}
}

func TestWritePrefixes(t *testing.T) {
	if got := WritePrefixes(0); got != nil {
		t.Errorf("WritePrefixes(0) = %v", got)
	}
	if got := WritePrefixes(100); len(got) != 3 || got[0] != 1 || got[1] != 50 || got[2] != 99 {
		t.Errorf("WritePrefixes(100) = %v", got)
	}
}
