package rewrite

import (
	"math/rand"
	"testing"

	"payless/internal/region"
)

// segmentEstimator builds an exact 1-d row counter from density segments:
// seg[i] covers [bounds[i], bounds[i+1]) holding counts[i] rows uniformly.
func segmentEstimator(bounds []int64, counts []float64) Estimator {
	return func(b region.Box) float64 {
		iv := b.Dims[0]
		var total float64
		for i := 0; i < len(counts); i++ {
			seg := region.Interval{Lo: bounds[i], Hi: bounds[i+1]}
			x, ok := seg.Intersect(iv)
			if !ok {
				continue
			}
			total += counts[i] * float64(x.Width()) / float64(seg.Width())
		}
		return total
	}
}

// TestPaperFig6Rem2 reproduces the paper's 1-d worked example: the optimal
// remainder set overlaps stored query V1 and costs 3 transactions, beating
// the straight decomposition's 4.
func TestPaperFig6Rem2(t *testing.T) {
	q := region.NewBox(region.Interval{Lo: 0, Hi: 101}) // A in [0,100]
	v1 := region.NewBox(region.Interval{Lo: 10, Hi: 20})
	v2 := region.NewBox(region.Interval{Lo: 30, Hi: 60})
	est := segmentEstimator(
		[]int64{0, 10, 20, 30, 60, 101},
		[]float64{21, 28, 34, 91, 123},
	)
	cfg := Config{TuplesPerTransaction: 100, Full: q}
	plan := Remainders(q, []region.Box{v1, v2}, cfg, est)

	if plan.Transactions != 3 {
		t.Fatalf("transactions = %d, want 3 (paper Rem2); boxes: %v", plan.Transactions, plan.Boxes)
	}
	if len(plan.Boxes) != 2 {
		t.Fatalf("want 2 remainder queries, got %v", plan.Boxes)
	}
	// One box must be [0,30) (overlapping V1), the other [60,101).
	found030, found60 := false, false
	for _, b := range plan.Boxes {
		switch b.String() {
		case "[0,30)":
			found030 = true
		case "[60,101)":
			found60 = true
		}
	}
	if !found030 || !found60 {
		t.Errorf("boxes: %v, want [0,30) and [60,101)", plan.Boxes)
	}
	if plan.Stats.Elementary != 3 {
		t.Errorf("elementary boxes: %d", plan.Stats.Elementary)
	}
}

// TestPaperFig6Rem1WithoutEnumeration checks the straight decomposition
// (elementary boxes only) costs 4 transactions, as the paper's Rem1.
func TestPaperFig6Rem1WithoutEnumeration(t *testing.T) {
	q := region.NewBox(region.Interval{Lo: 0, Hi: 101})
	v1 := region.NewBox(region.Interval{Lo: 10, Hi: 20})
	v2 := region.NewBox(region.Interval{Lo: 30, Hi: 60})
	est := segmentEstimator(
		[]int64{0, 10, 20, 30, 60, 101},
		[]float64{21, 28, 34, 91, 123},
	)
	// MaxEnumeration=1 forces the fallback to elementary singletons.
	cfg := Config{TuplesPerTransaction: 100, Full: q, MaxEnumeration: 1}
	plan := Remainders(q, []region.Box{v1, v2}, cfg, est)
	if plan.Transactions != 4 {
		t.Fatalf("straight decomposition = %d transactions, want 4 (Rem1)", plan.Transactions)
	}
	if len(plan.Boxes) != 3 {
		t.Errorf("want the 3 elementary remainder queries, got %v", plan.Boxes)
	}
}

func TestFullyCovered(t *testing.T) {
	q := region.NewBox(region.Interval{Lo: 0, Hi: 10})
	plan := Remainders(q, []region.Box{q.Clone()}, Config{TuplesPerTransaction: 100, Full: q}, func(region.Box) float64 { return 1 })
	if len(plan.Boxes) != 0 || plan.Transactions != 0 {
		t.Errorf("covered call must be free: %+v", plan)
	}
}

func TestNoCoverageFastPath(t *testing.T) {
	q := region.NewBox(region.Interval{Lo: 0, Hi: 100})
	plan := Remainders(q, nil, Config{TuplesPerTransaction: 100, Full: q}, func(b region.Box) float64 { return 250 })
	if len(plan.Boxes) != 1 || !plan.Boxes[0].Equal(q) {
		t.Fatalf("uncovered call should be q itself: %v", plan.Boxes)
	}
	if plan.Transactions != 3 {
		t.Errorf("ceil(250/100) = %d, want 3", plan.Transactions)
	}
	if plan.Stats.Enumerated != 1 || plan.Stats.Kept != 1 {
		t.Errorf("fast path stats: %+v", plan.Stats)
	}
}

func TestZeroEstimateIsFree(t *testing.T) {
	q := region.NewBox(region.Interval{Lo: 0, Hi: 100})
	plan := Remainders(q, nil, Config{TuplesPerTransaction: 100, Full: q}, func(region.Box) float64 { return 0 })
	if plan.Transactions != 0 {
		t.Errorf("empty result costs nothing: %d", plan.Transactions)
	}
}

func TestPruningAblationCounters(t *testing.T) {
	// 2-d example resembling Fig. 7: several stored boxes carve the space.
	q := region.NewBox(region.Interval{Lo: 0, Hi: 100}, region.Interval{Lo: 0, Hi: 60})
	covered := []region.Box{
		region.NewBox(region.Interval{Lo: 0, Hi: 40}, region.Interval{Lo: 0, Hi: 30}),
		region.NewBox(region.Interval{Lo: 60, Hi: 100}, region.Interval{Lo: 40, Hi: 60}),
		region.NewBox(region.Interval{Lo: 20, Hi: 60}, region.Interval{Lo: 45, Hi: 55}),
	}
	est := func(b region.Box) float64 { return b.Volume() / 10 }
	on := Remainders(q, covered, Config{TuplesPerTransaction: 100, Full: q}, est)
	off := Remainders(q, covered, Config{TuplesPerTransaction: 100, Full: q, DisablePruning: true}, est)
	if on.Stats.Enumerated != off.Stats.Enumerated {
		t.Errorf("enumeration count must not depend on pruning: %d vs %d", on.Stats.Enumerated, off.Stats.Enumerated)
	}
	if on.Stats.Kept >= off.Stats.Kept {
		t.Errorf("pruning must reduce kept boxes: on=%d off=%d", on.Stats.Kept, off.Stats.Kept)
	}
	// Boxes that cover no elementary box are dropped regardless of pruning,
	// so Kept may be below Enumerated even with pruning disabled.
	if off.Stats.Kept > off.Stats.Enumerated {
		t.Errorf("kept=%d exceeds enumerated=%d", off.Stats.Kept, off.Stats.Enumerated)
	}
	// Both must produce complete covers with comparable costs.
	if on.Transactions > off.Transactions {
		t.Errorf("pruning must not worsen the plan: %d vs %d", on.Transactions, off.Transactions)
	}
}

func TestCategoricalDims(t *testing.T) {
	// Fig. 8: A2 categorical with 6 values; stored boxes leave region that
	// would need a multi-value categorical span — invalid, so the rewriter
	// must use single values or the whole domain.
	full := region.NewBox(region.Interval{Lo: 0, Hi: 100}, region.Interval{Lo: 0, Hi: 6})
	q := region.NewBox(region.Interval{Lo: 30, Hi: 80}, region.Interval{Lo: 0, Hi: 6})
	covered := []region.Box{
		region.NewBox(region.Interval{Lo: 30, Hi: 50}, region.Point(0)),
		region.NewBox(region.Interval{Lo: 30, Hi: 50}, region.Point(1)),
	}
	est := func(b region.Box) float64 { return b.Volume() }
	cfg := Config{TuplesPerTransaction: 100, Full: full, DimKinds: []DimKind{Numeric, Categorical}}
	plan := Remainders(q, covered, cfg, est)
	if len(plan.Boxes) == 0 {
		t.Fatal("expected remainder queries")
	}
	for _, b := range plan.Boxes {
		w := b.Dims[1].Width()
		if w != 1 && w != 6 {
			t.Errorf("categorical extent must be a single value or the whole domain: %v", b)
		}
	}
	// Coverage check: the union of chosen boxes covers every elementary box
	// (a decomposed categorical elem is covered jointly, not by containment).
	elems := region.Subtract(q, covered)
	for _, e := range elems {
		if !region.CoveredBy(e, plan.Boxes) {
			t.Errorf("elementary box %v not covered by %v", e, plan.Boxes)
		}
	}
}

// TestCoverProperty: for random 2-d configurations, the chosen remainder
// boxes always cover every elementary box, and the plan never costs more
// than the straight decomposition.
func TestCoverProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	est := func(b region.Box) float64 { return b.Volume() / 3 }
	for trial := 0; trial < 100; trial++ {
		q := region.NewBox(region.Interval{Lo: 0, Hi: 60}, region.Interval{Lo: 0, Hi: 60})
		var covered []region.Box
		for i := 0; i < 1+rng.Intn(4); i++ {
			lo1, lo2 := rng.Int63n(50), rng.Int63n(50)
			covered = append(covered, region.NewBox(
				region.Interval{Lo: lo1, Hi: lo1 + rng.Int63n(30) + 1},
				region.Interval{Lo: lo2, Hi: lo2 + rng.Int63n(30) + 1},
			))
		}
		cfg := Config{TuplesPerTransaction: 10, Full: q}
		plan := Remainders(q, covered, cfg, est)
		elems := region.Subtract(q, covered)
		if len(elems) == 0 {
			if len(plan.Boxes) != 0 {
				t.Fatalf("trial %d: covered query got boxes %v", trial, plan.Boxes)
			}
			continue
		}
		for _, e := range elems {
			found := false
			for _, b := range plan.Boxes {
				if b.Contains(e) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("trial %d: elem %v uncovered by %v", trial, e, plan.Boxes)
			}
		}
		var straight int64
		for _, e := range elems {
			straight += priceOf(est(e), cfg.TuplesPerTransaction)
		}
		if plan.Transactions > straight {
			t.Fatalf("trial %d: plan %d transactions worse than straight %d", trial, plan.Transactions, straight)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	q := region.NewBox(region.Interval{Lo: 0, Hi: 10})
	// Zero config values must default (t=100, enumeration cap).
	plan := Remainders(q, nil, Config{Full: q}, func(region.Box) float64 { return 100 })
	if plan.Transactions != 1 {
		t.Errorf("default t=100: %d", plan.Transactions)
	}
}

// TestExactCoverNeverWorseThanGreedy: on random small instances the exact
// DP's total price is at most the greedy approximation's.
func TestExactCoverNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		var cands []candidate
		// Singletons guarantee feasibility.
		for e := 0; e < n; e++ {
			cands = append(cands, candidate{trans: int64(1 + rng.Intn(3)), covers: []int{e}})
		}
		// Random multi-cover candidates.
		for k := 0; k < 1+rng.Intn(6); k++ {
			var covers []int
			for e := 0; e < n; e++ {
				if rng.Intn(2) == 0 {
					covers = append(covers, e)
				}
			}
			if len(covers) == 0 {
				continue
			}
			cands = append(cands, candidate{trans: int64(1 + rng.Intn(4)), covers: covers})
		}
		exact, ok := exactCover(n, cands)
		if !ok {
			t.Fatalf("trial %d: exact cover infeasible", trial)
		}
		greedy := setCover(n, cands)
		sum := func(cs []candidate) int64 {
			var s int64
			for _, c := range cs {
				s += c.trans
			}
			return s
		}
		if sum(exact) > sum(greedy) {
			t.Fatalf("trial %d: exact %d worse than greedy %d", trial, sum(exact), sum(greedy))
		}
		// Exact result must cover everything.
		covered := make(map[int]bool)
		for _, c := range exact {
			for _, e := range c.covers {
				covered[e] = true
			}
		}
		if len(covered) != n {
			t.Fatalf("trial %d: exact cover misses elements (%d of %d)", trial, len(covered), n)
		}
	}
}

// TestExactCoverBeatsGreedyOnKnownInstance: the classic instance where
// greedy is suboptimal.
func TestExactCoverBeatsGreedyOnKnownInstance(t *testing.T) {
	// Elements {0,1,2,3}; greedy picks the big cheap-looking set first and
	// pays 1+2+2 = 5; optimal is 2+2 = 4.
	cands := []candidate{
		{trans: 3, covers: []int{0, 1, 2, 3}}, // ratio 0.75
		{trans: 2, covers: []int{0, 1}},       // ratio 1.0
		{trans: 2, covers: []int{2, 3}},       // ratio 1.0
	}
	exact, ok := exactCover(4, cands)
	if !ok {
		t.Fatal("infeasible")
	}
	var total int64
	for _, c := range exact {
		total += c.trans
	}
	if total != 3 {
		t.Errorf("optimal here is the single set at 3, got %d", total)
	}
	// A sharper instance: singleton prices make the greedy ratio misleading.
	cands2 := []candidate{
		{trans: 5, covers: []int{0, 1, 2}, rows: 500}, // greedy ratio 1.67
		{trans: 2, covers: []int{0, 1}, rows: 150},
		{trans: 2, covers: []int{2}, rows: 150},
	}
	exact2, _ := exactCover(3, cands2)
	var total2 int64
	for _, c := range exact2 {
		total2 += c.trans
	}
	if total2 != 4 {
		t.Errorf("optimal 4 (2+2), got %d", total2)
	}
}
