// Package rewrite implements PayLess's semantic query rewriting (paper §4.2).
//
// Given a prospective RESTful call (a box q over a table's queryable space)
// and the boxes already stored in the semantic store, the rewriter computes
// the uncovered region V, decomposes it into disjoint elementary boxes, and
// finds a set of valid remainder queries covering V at minimum estimated
// price in data-market transactions.
//
// The generation step is the paper's Algorithm 1: bounding-box candidates
// are enumerated from the per-dimension separator sets of the elementary
// boxes, with two pruning rules — (1) only minimum bounding boxes survive,
// and (2) a box is dropped when its price is not below the summed price of
// the elementary boxes it contains. Remainder queries may deliberately
// overlap stored results when re-downloading a covered sliver is cheaper
// than an extra transaction (the paper's Rem2 example). Categorical
// dimensions span a single value or the whole domain (Fig. 8). The final
// selection is the greedy weighted set cover of Chvátal [22]; each
// elementary box is itself always a feasible candidate, so a cover exists.
package rewrite

import (
	"math"
	"sort"

	"payless/internal/region"
)

// DimKind classifies one box axis for candidate enumeration.
type DimKind uint8

const (
	// Numeric dimensions accept arbitrary ranges between separators.
	Numeric DimKind = iota
	// Categorical dimensions accept a single value or the whole domain.
	Categorical
)

// Config parameterises remainder generation for one table.
type Config struct {
	// TuplesPerTransaction is the dataset page size t.
	TuplesPerTransaction int
	// DimKinds gives the kind of each queryable dimension, parallel to the
	// box axes. Missing entries default to Numeric.
	DimKinds []DimKind
	// Full is the table's whole queryable space (used for the whole-domain
	// extent of categorical dimensions).
	Full region.Box
	// DisablePruning turns off pruning rules 1 and 2 (Fig. 15 ablation).
	DisablePruning bool
	// MaxEnumeration caps Algorithm 1's enumeration; beyond the cap the
	// rewriter falls back to elementary boxes only. Zero means the default.
	MaxEnumeration int
}

const defaultMaxEnumeration = 100000

// Stats counts Algorithm 1's work for the Fig. 15 experiment.
type Stats struct {
	// Elementary is the number of elementary boxes of V.
	Elementary int
	// Enumerated is the number of bounding boxes Algorithm 1 generated
	// before pruning.
	Enumerated int
	// Kept is the number surviving both pruning rules.
	Kept int
}

// Plan is the chosen set of remainder queries.
type Plan struct {
	// Boxes are the remainder queries to send, covering all of V.
	Boxes []region.Box
	// Transactions is the estimated total price of the remainder queries.
	Transactions int64
	// EstRows is the estimated number of rows the remainder queries retrieve.
	EstRows float64
	Stats   Stats
}

// Estimator returns the expected number of table rows inside a box.
type Estimator func(region.Box) float64

// priceOf converts an estimated row count into transactions.
func priceOf(rows float64, t int) int64 {
	if rows <= 0 {
		return 0
	}
	return int64(math.Ceil(rows / float64(t)))
}

// candidate is one option for the set cover: usually a single bounding box,
// but a composite of several boxes when an elementary box with an invalid
// categorical span is decomposed per value.
type candidate struct {
	boxes  []region.Box
	rows   float64
	trans  int64
	covers []int
}

// Remainders computes the minimum-price set of valid remainder queries for
// the call box q given the stored boxes. An empty plan (no boxes) means q is
// fully covered and the call is free.
func Remainders(q region.Box, covered []region.Box, cfg Config, est Estimator) Plan {
	if cfg.TuplesPerTransaction <= 0 {
		cfg.TuplesPerTransaction = 100
	}
	if cfg.MaxEnumeration <= 0 {
		cfg.MaxEnumeration = defaultMaxEnumeration
	}
	elems := region.Subtract(q, covered)
	if len(elems) == 0 {
		return Plan{}
	}
	plan := Plan{Stats: Stats{Elementary: len(elems)}}

	// Fast path: nothing of q is covered — q itself retrieves exactly the
	// needed rows, and ceil is subadditive, so no decomposition beats it.
	if len(elems) == 1 && elems[0].Equal(q) {
		rows := est(q)
		plan.Boxes = []region.Box{q}
		plan.EstRows = rows
		plan.Transactions = priceOf(rows, cfg.TuplesPerTransaction)
		plan.Stats.Enumerated = 1
		plan.Stats.Kept = 1
		return plan
	}

	elemPrice := make([]int64, len(elems))
	elemRows := make([]float64, len(elems))
	for i, e := range elems {
		elemRows[i] = est(e)
		elemPrice[i] = priceOf(elemRows[i], cfg.TuplesPerTransaction)
	}

	cands := enumerate(q, elems, elemRows, elemPrice, cfg, est, &plan.Stats)

	// Elementary boxes themselves are always feasible remainder queries
	// (straight decomposition, the paper's Rem1), guaranteeing a cover.
	// Elementary boxes whose categorical span is neither a single value nor
	// the whole domain are inexpressible as calls (Fig. 8); they become a
	// composite candidate of per-value boxes, or a whole-domain widening
	// when the span is too wide to split.
	for i, e := range elems {
		boxes := validize(e, cfg)
		var rows float64
		var trans int64
		if len(boxes) == 1 && boxes[0].Equal(e) {
			rows, trans = elemRows[i], elemPrice[i]
		} else {
			for _, b := range boxes {
				r := est(b)
				rows += r
				trans += priceOf(r, cfg.TuplesPerTransaction)
			}
		}
		cands = append(cands, candidate{boxes: boxes, rows: rows, trans: trans, covers: []int{i}})
	}

	chosen := bestCover(len(elems), cands)
	for _, c := range chosen {
		plan.Boxes = append(plan.Boxes, c.boxes...)
		plan.Transactions += c.trans
		plan.EstRows += c.rows
	}
	return plan
}

// maxCategoricalSplit caps the per-value decomposition of one elementary
// box; wider spans are widened to the whole domain instead.
const maxCategoricalSplit = 64

// validize rewrites an elementary box into a set of valid call boxes:
// categorical dimensions may only span one value or the whole domain.
func validize(e region.Box, cfg Config) []region.Box {
	out := []region.Box{e}
	for i := range e.Dims {
		kind := Numeric
		if i < len(cfg.DimKinds) {
			kind = cfg.DimKinds[i]
		}
		if kind != Categorical {
			continue
		}
		full := e.Dims[i]
		if i < cfg.Full.D() {
			full = cfg.Full.Dims[i]
		}
		var next []region.Box
		for _, b := range out {
			iv := b.Dims[i]
			if iv.Width() == 1 || iv.Equal(full) {
				next = append(next, b)
				continue
			}
			if iv.Width()*int64(len(out)) > maxCategoricalSplit {
				nb := b.Clone()
				nb.Dims[i] = full
				next = append(next, nb)
				continue
			}
			for v := iv.Lo; v < iv.Hi; v++ {
				nb := b.Clone()
				nb.Dims[i] = region.Point(v)
				next = append(next, nb)
			}
		}
		out = next
	}
	return out
}

// enumerate runs Algorithm 1: candidate bounding boxes from separator sets,
// filtered by the two pruning rules unless disabled.
func enumerate(q region.Box, elems []region.Box, elemRows []float64, elemPrice []int64, cfg Config, est Estimator, stats *Stats) []candidate {
	d := q.D()
	seps := region.SeparatorSets(elems)

	// Per-dimension candidate extents.
	extents := make([][]region.Interval, d)
	total := 1
	for i := 0; i < d; i++ {
		kind := Numeric
		if i < len(cfg.DimKinds) {
			kind = cfg.DimKinds[i]
		}
		var exts []region.Interval
		switch kind {
		case Categorical:
			// Single values present in some elementary box, plus the whole
			// domain (Fig. 8).
			seen := make(map[int64]struct{})
			for _, e := range elems {
				for v := e.Dims[i].Lo; v < e.Dims[i].Hi; v++ {
					seen[v] = struct{}{}
				}
			}
			vals := make([]int64, 0, len(seen))
			for v := range seen {
				vals = append(vals, v)
			}
			sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
			for _, v := range vals {
				exts = append(exts, region.Point(v))
			}
			full := q.Dims[i]
			if i < cfg.Full.D() {
				full = cfg.Full.Dims[i]
			}
			if full.Width() > 1 {
				exts = append(exts, full)
			}
		default:
			s := seps[i]
			for a := 0; a < len(s); a++ {
				for b := a + 1; b < len(s); b++ {
					exts = append(exts, region.Interval{Lo: s[a], Hi: s[b]})
				}
			}
		}
		if len(exts) == 0 {
			return nil
		}
		extents[i] = exts
		if total > cfg.MaxEnumeration/len(exts) {
			// Enumeration would exceed the cap; fall back to elementary
			// boxes only (the caller always appends them).
			return nil
		}
		total *= len(exts)
	}

	var out []candidate
	dims := make([]region.Interval, d)
	var rec func(i int)
	rec = func(i int) {
		if i == d {
			stats.Enumerated++
			b := region.NewBox(dims...)
			c, ok := buildCandidate(b, elems, elemRows, elemPrice, cfg, est)
			if ok {
				stats.Kept++
				out = append(out, c)
			}
			return
		}
		for _, e := range extents[i] {
			dims[i] = e
			rec(i + 1)
		}
	}
	rec(0)
	return out
}

// buildCandidate applies the pruning rules to one enumerated box.
func buildCandidate(b region.Box, elems []region.Box, elemRows []float64, elemPrice []int64, cfg Config, est Estimator) (candidate, bool) {
	var covers []int
	var coveredSum int64
	for i, e := range elems {
		if b.Contains(e) {
			covers = append(covers, i)
			coveredSum += elemPrice[i]
		}
	}
	if len(covers) == 0 {
		return candidate{}, false
	}
	rows := est(b)
	trans := priceOf(rows, cfg.TuplesPerTransaction)
	if cfg.DisablePruning {
		return candidate{boxes: []region.Box{b}, rows: rows, trans: trans, covers: covers}, true
	}
	// Pruning rule 1: only minimum bounding boxes survive. Shrinking b to
	// the bounding box of the elementary boxes it contains must change
	// nothing; otherwise b retrieves redundant tuples for the same coverage.
	mbb, ok := region.BoundingBox(sub(elems, covers))
	if !ok || !mbb.Equal(b) {
		return candidate{}, false
	}
	// Pruning rule 2: the box must be strictly cheaper than fetching its
	// elementary boxes individually.
	if trans >= coveredSum {
		return candidate{}, false
	}
	return candidate{boxes: []region.Box{b}, rows: rows, trans: trans, covers: covers}, true
}

func sub(elems []region.Box, idx []int) []region.Box {
	out := make([]region.Box, len(idx))
	for i, j := range idx {
		out[i] = elems[j]
	}
	return out
}

// exactCoverLimit bounds the elementary-box count for which the optimal
// cover is computed exactly (bitmask DP over 2^n states); larger instances
// use the greedy approximation, as the paper does.
const exactCoverLimit = 14

// bestCover picks the remainder-query set covering all elementary boxes at
// minimum estimated price: exactly for small instances, greedily (Chvátal
// [22], the paper's choice) beyond exactCoverLimit.
func bestCover(nElems int, cands []candidate) []candidate {
	if nElems <= exactCoverLimit {
		if chosen, ok := exactCover(nElems, cands); ok {
			return chosen
		}
	}
	return setCover(nElems, cands)
}

// exactCover solves weighted set cover optimally by DP over covered-element
// bitmasks. Returns ok=false when the instance is degenerate (no feasible
// cover), which cannot happen with elementary singletons present.
func exactCover(nElems int, cands []candidate) ([]candidate, bool) {
	full := (1 << nElems) - 1
	const inf = math.MaxInt64 / 4
	cost := make([]int64, full+1)
	rows := make([]float64, full+1)
	choice := make([]int, full+1)
	parent := make([]int, full+1)
	for i := 1; i <= full; i++ {
		cost[i] = inf
		choice[i] = -1
		parent[i] = -1
	}
	masks := make([]int, len(cands))
	for ci, c := range cands {
		m := 0
		for _, e := range c.covers {
			m |= 1 << e
		}
		masks[ci] = m
	}
	for state := 0; state < full; state++ {
		if cost[state] == inf {
			continue
		}
		// Expand by every candidate that covers something new. Ties on
		// price break towards fewer retrieved rows (less redundant data).
		for ci, c := range cands {
			next := state | masks[ci]
			if next == state {
				continue
			}
			nc := cost[state] + c.trans
			nr := rows[state] + c.rows
			if nc < cost[next] || (nc == cost[next] && nr < rows[next]) {
				cost[next] = nc
				rows[next] = nr
				choice[next] = ci
				parent[next] = state
			}
		}
	}
	if cost[full] >= inf {
		return nil, false
	}
	// Reconstruct along the recorded parent pointers.
	var chosen []candidate
	state := full
	for state != 0 {
		ci := choice[state]
		prev := parent[state]
		if ci < 0 || prev < 0 || prev == state {
			return nil, false
		}
		chosen = append(chosen, cands[ci])
		state = prev
	}
	return chosen, true
}

// setCover runs the greedy weighted set cover of Chvátal [22]: repeatedly
// pick the candidate minimising cost per newly covered elementary box.
func setCover(nElems int, cands []candidate) []candidate {
	uncovered := make(map[int]struct{}, nElems)
	for i := 0; i < nElems; i++ {
		uncovered[i] = struct{}{}
	}
	var chosen []candidate
	for len(uncovered) > 0 {
		bestIdx := -1
		bestRatio := math.Inf(1)
		bestNew := 0
		for ci, c := range cands {
			newCount := 0
			for _, e := range c.covers {
				if _, ok := uncovered[e]; ok {
					newCount++
				}
			}
			if newCount == 0 {
				continue
			}
			ratio := float64(c.trans) / float64(newCount)
			if ratio < bestRatio || (ratio == bestRatio && newCount > bestNew) {
				bestRatio = ratio
				bestNew = newCount
				bestIdx = ci
			}
		}
		if bestIdx < 0 {
			// Unreachable when elementary singletons are present; guard
			// against malformed candidate sets anyway.
			break
		}
		c := cands[bestIdx]
		chosen = append(chosen, c)
		for _, e := range c.covers {
			delete(uncovered, e)
		}
	}
	return chosen
}
