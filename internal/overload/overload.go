// Package overload is the buyer stack's overload-protection layer: the
// per-query retry budget and the deadline-propagation helpers every
// retrying layer consults before it spends another attempt or sleeps
// another backoff.
//
// The problem it solves is retry multiplication. The stack retries at
// three layers — the HTTP connector retries transport failures, the
// federation layer fails over across mirrors and hedges slow calls — and
// without a shared cap a single degraded mirror turns one query's C calls
// into C × connectorRetries × failovers wire attempts: a retry storm that
// arrives exactly when the market is least able to absorb it. The fix is
// the classic retry budget (Finagle, gRPC): one token pool per query,
// deposited when logical calls are issued, withdrawn by every extra
// attempt at any layer. Retries that would exceed the pool fail with
// ErrRetryBudget — typed, so front ends can distinguish "we gave up to
// protect the system" from a tripped breaker's ErrCircuitOpen.
//
// Deadline propagation is the second half: a per-request deadline rides
// the query context (context.WithTimeout already intersects with every
// downstream per-call timeout), and the helpers here let retry loops,
// coalesce windows, and hedge timers check the remaining budget BEFORE
// sleeping — no layer is allowed to sleep past the instant the caller
// stops listening.
package overload

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrRetryBudget means the query's retry budget is exhausted: the failing
// call could have been retried (or failed over), but the query already
// spent its attempt allowance across all layers. Distinct from
// engine.ErrCircuitOpen — a breaker refuses calls to a known-bad dataset,
// the budget refuses retries regardless of destination.
var ErrRetryBudget = errors.New("overload: retry budget exhausted")

// GrantPerCall is the credit each fresh logical market call deposits into
// the query's budget. At 0.5 a query issuing C calls may spend roughly
// C/2 extra attempts on top of the base credit — "max total attempts ≈
// calls × 1.5" once the base is amortised.
const GrantPerCall = 0.5

// DefaultBaseCredit is the budget's starting credit when the client does
// not configure one: enough to ride out a couple of transient faults on a
// small query without enabling a storm on a large one.
const DefaultBaseCredit = 3.0

// RetryBudget is one query's shared attempt allowance. Connector retries,
// federation failovers, and hedges all draw from the same pool, so layered
// retries cannot multiply. The zero of *RetryBudget (nil) is a valid
// unlimited budget: every method no-ops and Spend always admits.
type RetryBudget struct {
	mu      sync.Mutex
	credit  float64
	granted float64
	spent   int64
	denied  int64
}

// NewRetryBudget returns a budget starting with base credit (base < 0 is
// clamped to 0; pair with Grant deposits per call).
func NewRetryBudget(base float64) *RetryBudget {
	if base < 0 {
		base = 0
	}
	return &RetryBudget{credit: base}
}

// Grant deposits n tokens (fractions allowed). Nil-safe.
func (b *RetryBudget) Grant(n float64) {
	if b == nil || n <= 0 {
		return
	}
	b.mu.Lock()
	b.credit += n
	b.granted += n
	b.mu.Unlock()
}

// Spend withdraws n tokens if the pool holds them, reporting whether the
// attempt is admitted. A nil budget admits everything (unlimited).
func (b *RetryBudget) Spend(n float64) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.credit < n {
		b.denied++
		return false
	}
	b.credit -= n
	b.spent++
	return true
}

// Stats snapshots the budget: remaining credit, total granted on top of
// the base, attempts admitted, and attempts denied.
func (b *RetryBudget) Stats() (credit, granted float64, spent, denied int64) {
	if b == nil {
		return 0, 0, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.credit, b.granted, b.spent, b.denied
}

// budgetKey keys the budget on a query context.
type budgetKey struct{}

// WithBudget attaches a retry budget to a query context. The client
// attaches one per query; every retrying layer below finds it with
// BudgetFrom.
func WithBudget(ctx context.Context, b *RetryBudget) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, b)
}

// BudgetFrom extracts the context's retry budget; nil (unlimited) when the
// query did not attach one — background maintenance calls, direct library
// use without overload protection.
func BudgetFrom(ctx context.Context) *RetryBudget {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(budgetKey{}).(*RetryBudget)
	return b
}

// Grant deposits n tokens into the context's budget; a no-op without one.
func Grant(ctx context.Context, n float64) {
	BudgetFrom(ctx).Grant(n)
}

// Spend withdraws n tokens from the context's budget, reporting admission.
// Always true without a budget.
func Spend(ctx context.Context, n float64) bool {
	return BudgetFrom(ctx).Spend(n)
}

// Remaining reports the time left until ctx's deadline; ok is false when
// the context carries none.
func Remaining(ctx context.Context) (time.Duration, bool) {
	if ctx == nil {
		return 0, false
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	return time.Until(dl), true
}

// ShortOf reports whether ctx carries a deadline with less than d left: a
// sleep or park of length d would outlive the caller. Deadline-free
// contexts are never short.
func ShortOf(ctx context.Context, d time.Duration) bool {
	rem, ok := Remaining(ctx)
	return ok && rem < d
}

// Jitter spreads d uniformly into [d×(1-f), d×(1+f)] so synchronized
// clients told to retry do not come back in lockstep. rnd is a [0,1)
// source (tests inject a seeded one); nil uses the global math/rand.
// f is clamped to [0,1]; non-positive d is returned unchanged.
func Jitter(d time.Duration, f float64, rnd func() float64) time.Duration {
	if d <= 0 || f <= 0 {
		return d
	}
	if f > 1 {
		f = 1
	}
	if rnd == nil {
		rnd = rand.Float64
	}
	// rnd in [0,1) → factor in [1-f, 1+f).
	factor := 1 - f + 2*f*rnd()
	return time.Duration(float64(d) * factor)
}
