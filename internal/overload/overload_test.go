package overload

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestRetryBudgetSpendAndGrant(t *testing.T) {
	b := NewRetryBudget(2)
	if !b.Spend(1) || !b.Spend(1) {
		t.Fatalf("base credit of 2 should admit two unit spends")
	}
	if b.Spend(1) {
		t.Fatalf("third spend must be denied on an empty budget")
	}
	b.Grant(GrantPerCall)
	b.Grant(GrantPerCall)
	if !b.Spend(1) {
		t.Fatalf("two call grants (2 x %v) should fund one more attempt", GrantPerCall)
	}
	credit, granted, spent, denied := b.Stats()
	if credit != 0 || granted != 1 || spent != 3 || denied != 1 {
		t.Fatalf("stats = credit %v granted %v spent %d denied %d, want 0 1 3 1",
			credit, granted, spent, denied)
	}
}

func TestRetryBudgetNegativeBaseClamped(t *testing.T) {
	b := NewRetryBudget(-5)
	if b.Spend(1) {
		t.Fatalf("negative base must clamp to zero credit, not go further negative")
	}
}

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *RetryBudget
	for i := 0; i < 100; i++ {
		if !b.Spend(1) {
			t.Fatalf("nil budget must admit every spend")
		}
	}
	b.Grant(1) // must not panic
	if c, g, s, d := b.Stats(); c != 0 || g != 0 || s != 0 || d != 0 {
		t.Fatalf("nil budget stats must be zero, got %v %v %v %v", c, g, s, d)
	}
}

func TestContextPlumbing(t *testing.T) {
	if BudgetFrom(context.Background()) != nil {
		t.Fatalf("bare context must carry no budget")
	}
	if !Spend(context.Background(), 10) {
		t.Fatalf("budget-free context must admit every spend")
	}
	b := NewRetryBudget(1)
	ctx := WithBudget(context.Background(), b)
	if BudgetFrom(ctx) != b {
		t.Fatalf("BudgetFrom must return the attached budget")
	}
	Grant(ctx, 1)
	if !Spend(ctx, 2) {
		t.Fatalf("1 base + 1 grant should admit a spend of 2")
	}
	if Spend(ctx, 1) {
		t.Fatalf("empty budget must deny through the context helpers too")
	}
}

func TestWithBudgetNilIsIdentity(t *testing.T) {
	ctx := context.Background()
	if got := WithBudget(ctx, nil); got != ctx {
		t.Fatalf("attaching a nil budget must not allocate a child context")
	}
}

func TestRemainingAndShortOf(t *testing.T) {
	if _, ok := Remaining(context.Background()); ok {
		t.Fatalf("deadline-free context must report no remaining budget")
	}
	if ShortOf(context.Background(), time.Hour) {
		t.Fatalf("deadline-free context is never short")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rem, ok := Remaining(ctx)
	if !ok || rem <= 0 || rem > 50*time.Millisecond {
		t.Fatalf("remaining = %v ok=%v, want (0, 50ms]", rem, ok)
	}
	if !ShortOf(ctx, time.Second) {
		t.Fatalf("a 50ms context is short of a 1s sleep")
	}
	if ShortOf(ctx, time.Microsecond) {
		t.Fatalf("a 50ms context is not short of a 1µs sleep")
	}
}

func TestJitterSpread(t *testing.T) {
	rnd := rand.New(rand.NewSource(42)).Float64
	base := 8 * time.Second
	lo, hi := base, base
	for i := 0; i < 1000; i++ {
		j := Jitter(base, 0.25, rnd)
		if j < time.Duration(float64(base)*0.75) || j >= time.Duration(float64(base)*1.25)+time.Nanosecond {
			t.Fatalf("jittered %v outside [6s, 10s)", j)
		}
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	// The spread must actually be used: over 1000 draws the extremes land
	// near the bounds.
	if lo > time.Duration(float64(base)*0.80) || hi < time.Duration(float64(base)*1.20) {
		t.Fatalf("jitter spread [%v, %v] too narrow for ±25%% of %v", lo, hi, base)
	}
	if Jitter(0, 0.25, rnd) != 0 {
		t.Fatalf("zero duration must pass through unjittered")
	}
	if Jitter(base, 0, rnd) != base {
		t.Fatalf("zero fraction must pass through unjittered")
	}
}

func TestRetryBudgetConcurrent(t *testing.T) {
	b := NewRetryBudget(0)
	const workers = 16
	done := make(chan int, workers)
	for w := 0; w < workers; w++ {
		go func() {
			admitted := 0
			for i := 0; i < 100; i++ {
				b.Grant(GrantPerCall)
				if b.Spend(1) {
					admitted++
				}
			}
			done <- admitted
		}()
	}
	total := 0
	for w := 0; w < workers; w++ {
		total += <-done
	}
	// 16 workers × 100 grants of 0.5 = 800 tokens; spends are 1 each, so at
	// most 800 admissions regardless of interleaving.
	if total > workers*100/2 {
		t.Fatalf("admitted %d spends from %d tokens of credit", total, workers*100/2)
	}
}
