package payless

import (
	"time"

	"payless/internal/core"
)

// Option customises a Config before the Client is built. Options are
// accepted by both Open and OpenHTTP; zero-value Config fields keep their
// documented defaults. Because Option is an alias-shaped function type,
// existing callers that pass bare func(*payless.Config) literals keep
// compiling unchanged.
type Option func(*Config)

// WithConsistency selects result-freshness vs. price (Weak, Window, Strong).
func WithConsistency(cons Consistency) Option {
	return func(c *Config) { c.Consistency = cons }
}

// WithBudget caps spending; over-budget queries fail with ErrOverBudget
// before any call is made.
func WithBudget(b Budget) Option {
	return func(c *Config) { c.Budget = b }
}

// WithAdmitter installs an external admission hook consulted after the
// client's own budget reservation: multi-tenant front ends (cmd/paylessd)
// use it to bind per-tenant and global budgets onto one shared client. The
// admitter sees the query's context, so per-caller identity can ride on it.
func WithAdmitter(a Admitter) Option {
	return func(c *Config) { c.Admitter = a }
}

// WithFetchConcurrency bounds in-flight market calls per plan step.
// The bill is identical at any setting; only wall-clock latency changes.
func WithFetchConcurrency(n int) Option {
	return func(c *Config) { c.FetchConcurrency = n }
}

// WithTracer installs a per-query execution tracer. Use &CollectTracer{}
// to populate Result.Trace on every query; nil (the default) disables
// tracing at near-zero cost.
func WithTracer(t Tracer) Option {
	return func(c *Config) { c.Tracer = t }
}

// WithDurableStore enables durable mode: the semantic store keeps a
// write-ahead log and atomic snapshots under dir, and Open recovers
// whatever a previous process had made durable. See Config.StoreDir.
func WithDurableStore(dir string) Option {
	return func(c *Config) { c.StoreDir = dir }
}

// WithStoreSync selects the durable store's WAL fsync cadence
// (StoreSyncPerCall, StoreSyncBatched, StoreSyncOff). batchEvery sets the
// batched cadence; 0 keeps the default (8).
func WithStoreSync(policy StoreSyncPolicy, batchEvery int) Option {
	return func(c *Config) {
		c.StoreSync = policy
		c.StoreBatchEvery = batchEvery
	}
}

// WithCheckpointEvery sets how many recorded calls accumulate in the WAL
// before an automatic snapshot checkpoint; negative disables automatic
// checkpoints.
func WithCheckpointEvery(records int) Option {
	return func(c *Config) { c.CheckpointEvery = records }
}

// WithBreaker enables per-dataset circuit breaking: after threshold
// consecutive call failures against one dataset, calls to it short-circuit
// with ErrCircuitOpen until cooldown elapses and a probe call succeeds.
// cooldown 0 defaults to 5s.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Config) {
		c.BreakerThreshold = threshold
		c.BreakerCooldown = cooldown
	}
}

// WithFederation federates the client across N mirrors of the same logical
// market: calls route to the endpoint minimizing a price+latency+health
// cost model and fail over to the next-cheapest healthy endpoint on error.
// With WithBreaker, breakers are kept per endpoint×dataset, so one dead
// mirror never blacklists a dataset healthy mirrors still serve. Endpoints
// need pre-built Callers under Open; OpenFederated builds HTTP connectors
// from BaseURL.
func WithFederation(endpoints ...MarketEndpoint) Option {
	return func(c *Config) { c.FederationEndpoints = endpoints }
}

// WithHedgeAfter, on a federated client, races the next-ranked endpoint
// when the chosen one has not answered within d, cancelling the loser; the
// shared idempotent CallID keeps any one endpoint from billing the call
// twice. d <= 0 disables hedging.
func WithHedgeAfter(d time.Duration) Option {
	return func(c *Config) {
		if d > 0 {
			c.HedgeAfter = d
		}
	}
}

// WithQueryDeadline bounds each query's wall-clock time when the caller's
// context carries no deadline of its own. The deadline propagates: retry
// backoffs, hedge timers and coalesce parking all check the remaining
// budget before sleeping. d <= 0 keeps the default (no deadline).
func WithQueryDeadline(d time.Duration) Option {
	return func(c *Config) {
		if d > 0 {
			c.QueryDeadline = d
		}
	}
}

// WithRetryBudget sets the base credit of the per-query retry-token budget
// shared by connector retries, federation failovers and hedges (each spends
// one token; every fresh logical call deposits half a token). base 0 keeps
// the default credit (3); negative disables budgeting entirely.
func WithRetryBudget(base float64) Option {
	return func(c *Config) { c.RetryBudget = base }
}

// WithStatistics selects the updatable statistic implementation.
func WithStatistics(kind StatsKind) Option {
	return func(c *Config) { c.Statistics = kind }
}

// WithDefaultTuplesPerTransaction sets the page size t for datasets that
// don't declare their own.
func WithDefaultTuplesPerTransaction(t int) Option {
	return func(c *Config) { c.DefaultTuplesPerTransaction = t }
}

// WithoutSQR turns off semantic query rewriting (the paper's
// "PayLess w/o SQR" ablation).
func WithoutSQR() Option {
	return func(c *Config) { c.DisableSQR = true }
}

// WithMinimizeCalls optimises for the number of RESTful calls instead of
// transactions ("Minimizing Calls" in the paper's evaluation).
func WithMinimizeCalls() Option {
	return func(c *Config) { c.MinimizeCalls = true }
}

// WithoutTheorems turns off the search-space reductions of Theorems 1–3
// (the "Disable All" ablation).
func WithoutTheorems() Option {
	return func(c *Config) { c.DisableTheorems = true }
}

// WithoutBoxPruning turns off Algorithm 1's remainder-box pruning rules.
func WithoutBoxPruning() Option {
	return func(c *Config) { c.DisableBoxPruning = true }
}

// WithPlanCache enables the parameterized plan-template cache: optimized
// plans are cached by normalized query shape and repeated shapes skip
// optimization entirely, with invalidation on semantic-store and statistics
// changes. size is the LRU capacity in templates; size <= 0 uses the
// default (1024).
func WithPlanCache(size int) Option {
	return func(c *Config) {
		if size <= 0 {
			size = core.DefaultPlanCacheSize
		}
		c.PlanCacheSize = size
	}
}

// WithCallScheduler enables the global market-call scheduler: concurrent
// queries needing the same box share one wire call and one bill, and a
// request canceled while waiting detaches without killing the shared call.
// A single query's bill is unchanged.
func WithCallScheduler() Option {
	return func(c *Config) { c.CallScheduler = true }
}

// WithCoalesceWindow enables the scheduler (implies WithCallScheduler) and
// lets it park sub-transaction-size fetches up to d, merging adjacent
// cross-query remainder boxes into one call when ceil pricing makes the
// union no more expensive than the parts. d <= 0 keeps the zero-delay
// default: dispatch immediately, single-flight only.
func WithCoalesceWindow(d time.Duration) Option {
	return func(c *Config) {
		c.CallScheduler = true
		if d > 0 {
			c.CoalesceWindow = d
		}
	}
}

// WithCallRetries bounds transport retries per HTTP market call (OpenHTTP
// only). n <= 0 disables retries; the connector default is 2.
func WithCallRetries(n int) Option {
	return func(c *Config) {
		if n <= 0 {
			n = -1
		}
		c.CallRetries = n
	}
}

// WithPerCallTimeout bounds each HTTP call attempt (OpenHTTP only).
// d <= 0 explicitly disables the per-attempt deadline so only the caller's
// context bounds the call; the connector default is 30s.
func WithPerCallTimeout(d time.Duration) Option {
	return func(c *Config) {
		if d <= 0 {
			d = -1
		}
		c.PerCallTimeout = d
	}
}

// WithCallBackoff shapes the HTTP connector's exponential retry backoff
// (OpenHTTP only); non-positive values keep the connector defaults
// (100ms base, 2s cap).
func WithCallBackoff(base, max time.Duration) Option {
	return func(c *Config) {
		c.CallBackoffBase = base
		c.CallBackoffMax = max
	}
}

// WithoutCallIDs disables the HTTP connector's idempotent call IDs
// (OpenHTTP only) for servers that reject unknown parameters; retried
// calls may then double-bill.
func WithoutCallIDs() Option {
	return func(c *Config) { c.DisableCallIDs = true }
}

// WithGreedyPlanner enables the greedy join-ordering fast path. margin is
// the accepted relative divergence between the greedy plan's estimated
// spend and a lower bound on the DP optimum before the optimizer falls back
// to the full dynamic program; margin <= 0 uses the default (0.05).
func WithGreedyPlanner(margin float64) Option {
	return func(c *Config) {
		c.GreedyPlanner = true
		c.GreedyMargin = margin
	}
}
