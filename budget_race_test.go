package payless

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"payless/internal/market"
)

// TestBudgetReservationBlocksConcurrentOverspend is the regression test for
// the budget TOCTOU: two concurrent queries, each estimated at 4
// transactions, race a total budget of 4. The unreserved check-then-execute
// admitted both (each saw zero spent before either settled) and jointly
// billed 8; the reservation admits exactly one. The wire call is gated so
// the admitted query demonstrably has not settled while the second query is
// being admitted — the race window is held open, not hoped for.
func TestBudgetReservationBlocksConcurrentOverspend(t *testing.T) {
	m := stressMarket(t, "acct")
	gc := &gatedCaller{inner: market.AccountCaller{Market: m, Key: "acct"}}
	client, err := Open(Config{
		Tables:               m.ExportCatalog(),
		Caller:               gc,
		TuplesPerTransaction: map[string]int{"DS": 10},
		Budget:               Budget{Total: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	gc.setGate(gate)

	// Disjoint boxes of 40 rows each: both estimate 4 transactions, so the
	// 4-transaction budget admits exactly one.
	sqls := []string{
		"SELECT v FROM T WHERE a >= 1 AND a <= 40",
		"SELECT v FROM T WHERE a >= 41 AND a <= 80",
	}
	var wg sync.WaitGroup
	var failed atomic.Int64
	errs := make([]error, len(sqls))
	for i, sql := range sqls {
		wg.Add(1)
		go func(i int, sql string) {
			defer wg.Done()
			_, errs[i] = client.Query(sql)
			if errs[i] != nil {
				failed.Add(1)
			}
		}(i, sql)
	}
	// Both queries have been admitted or rejected once each has either
	// reached the gated wire call or failed; only then is the gate released.
	waitForCond(t, "both queries to be admitted or rejected", func() bool {
		return gc.arrivals()+failed.Load() >= int64(len(sqls))
	})
	close(gate)
	wg.Wait()

	var ok, over int
	for i, err := range errs {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverBudget):
			over++
		default:
			t.Fatalf("query %d failed outside the budget: %v", i, err)
		}
	}
	if ok != 1 || over != 1 {
		t.Fatalf("budget of 4 admitted %d queries (%d over-budget); want exactly 1 admitted", ok, over)
	}
	if spent := client.TotalSpend().Transactions; spent > 4 {
		t.Fatalf("client overspent its budget: %d transactions, budget 4", spent)
	}
	meter, _ := m.MeterOf("acct")
	if meter.Transactions > 4 {
		t.Fatalf("seller billed past the budget: %d transactions, budget 4", meter.Transactions)
	}
	// The budget headroom is back after settlement: a covered re-read of the
	// admitted box is free and must pass the check.
	for i, err := range errs {
		if err == nil {
			if _, err := client.Query(sqls[i]); err != nil {
				t.Fatalf("covered re-read rejected: %v", err)
			}
		}
	}
}
