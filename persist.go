package payless

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"payless/internal/catalog"
	"payless/internal/semstore"
	"payless/internal/wal"
)

// ErrBadSnapshot is wrapped by LoadStore/LoadStoreFile when the input is
// not a semantic-store snapshot at all: unparseable JSON, a missing or
// wrong magic header, or an unsupported version. Test with errors.Is.
var ErrBadSnapshot = semstore.ErrBadSnapshot

// SaveStore serialises the semantic store — every paid-for call and its
// materialised rows — so the organisation's purchases survive restarts.
func (c *Client) SaveStore(w io.Writer) error {
	return c.store.Save(w)
}

// LoadStore restores a previously saved semantic store. Tables must exist
// in this client's catalog with the same schemas. Queries covered by the
// restored store are answered without paying the market again.
//
// The load is atomic: the whole snapshot is validated before anything is
// applied, so a truncated or corrupt file leaves the store untouched. A
// file that is not a snapshot fails with an error matching ErrBadSnapshot.
func (c *Client) LoadStore(r io.Reader) error {
	return c.store.Load(r, func(table string) (*catalog.Table, bool) {
		return c.cat.Lookup(table)
	})
}

// SaveStoreFile writes the store to path crash-safely: the snapshot goes to
// a temp file that is fsynced, atomically renamed over path, and made
// durable with a directory fsync. A crash at any instant leaves either the
// previous good snapshot or the new one — never a torn mix, and never
// neither.
func (c *Client) SaveStoreFile(path string) error {
	return c.saveStoreFile(wal.OS, path)
}

// saveStoreFile is SaveStoreFile over an injectable filesystem, so the
// crash suite can fail the writer partway and assert the previous snapshot
// survives.
func (c *Client) saveStoreFile(fsys wal.FS, path string) error {
	var buf bytes.Buffer
	if err := c.SaveStore(&buf); err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if n, err := f.Write(buf.Bytes()); err != nil {
		return fail(err)
	} else if n != buf.Len() {
		return fail(fmt.Errorf("payless: short snapshot write: %d of %d bytes", n, buf.Len()))
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// LoadStoreFile restores the semantic store from a file written by
// SaveStoreFile. Wrong files fail fast with ErrBadSnapshot; any error
// leaves the store untouched.
func (c *Client) LoadStoreFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.LoadStore(f)
}
