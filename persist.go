package payless

import (
	"io"
	"os"

	"payless/internal/catalog"
)

// SaveStore serialises the semantic store — every paid-for call and its
// materialised rows — so the organisation's purchases survive restarts.
func (c *Client) SaveStore(w io.Writer) error {
	return c.store.Save(w)
}

// LoadStore restores a previously saved semantic store. Tables must exist
// in this client's catalog with the same schemas. Queries covered by the
// restored store are answered without paying the market again.
func (c *Client) LoadStore(r io.Reader) error {
	return c.store.Load(r, func(table string) (*catalog.Table, bool) {
		return c.cat.Lookup(table)
	})
}

// SaveStoreFile and LoadStoreFile are path-based conveniences.
func (c *Client) SaveStoreFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.SaveStore(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadStoreFile restores the semantic store from a file written by
// SaveStoreFile.
func (c *Client) LoadStoreFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.LoadStore(f)
}
